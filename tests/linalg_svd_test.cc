// Tests for the thin SVD.
#include "linalg/svd.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "util/random.h"

namespace swsketch {
namespace {

Matrix RandomMatrix(size_t n, size_t d, uint64_t seed) {
  Rng rng(seed);
  Matrix m(n, d);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < d; ++j) m(i, j) = rng.Gaussian();
  }
  return m;
}

Matrix ReconstructFromSvd(const SvdResult& svd) {
  // U * diag(sigma) * Vt.
  Matrix us = svd.u;
  for (size_t i = 0; i < us.rows(); ++i) {
    for (size_t c = 0; c < us.cols(); ++c) {
      us(i, c) *= svd.singular_values[c];
    }
  }
  return us.Multiply(svd.vt);
}

TEST(SvdTest, ReconstructsWideMatrix) {
  Matrix a = RandomMatrix(6, 20, 1);  // Wide: rows < cols (sketch shape).
  SvdResult svd = ThinSvd(a);
  EXPECT_TRUE(ReconstructFromSvd(svd).ApproxEquals(a, 1e-8));
}

TEST(SvdTest, ReconstructsTallMatrix) {
  Matrix a = RandomMatrix(25, 7, 2);
  SvdResult svd = ThinSvd(a);
  EXPECT_TRUE(ReconstructFromSvd(svd).ApproxEquals(a, 1e-8));
}

TEST(SvdTest, SingularValuesDescendingPositive) {
  SvdResult svd = ThinSvd(RandomMatrix(10, 15, 3));
  EXPECT_TRUE(std::is_sorted(svd.singular_values.rbegin(),
                             svd.singular_values.rend()));
  for (double s : svd.singular_values) EXPECT_GT(s, 0.0);
}

TEST(SvdTest, VtRowsOrthonormal) {
  SvdResult svd = ThinSvd(RandomMatrix(8, 12, 4));
  for (size_t a = 0; a < svd.vt.rows(); ++a) {
    for (size_t b = 0; b < svd.vt.rows(); ++b) {
      double dot = 0.0;
      for (size_t j = 0; j < svd.vt.cols(); ++j) {
        dot += svd.vt(a, j) * svd.vt(b, j);
      }
      EXPECT_NEAR(dot, a == b ? 1.0 : 0.0, 1e-8);
    }
  }
}

TEST(SvdTest, UColumnsOrthonormal) {
  SvdResult svd = ThinSvd(RandomMatrix(9, 14, 5));
  for (size_t a = 0; a < svd.u.cols(); ++a) {
    for (size_t b = 0; b < svd.u.cols(); ++b) {
      double dot = 0.0;
      for (size_t i = 0; i < svd.u.rows(); ++i) {
        dot += svd.u(i, a) * svd.u(i, b);
      }
      EXPECT_NEAR(dot, a == b ? 1.0 : 0.0, 1e-8);
    }
  }
}

TEST(SvdTest, RankDeficientDetected) {
  // Rank-2 matrix: third row = row0 + row1.
  Matrix a(3, 10);
  Rng rng(6);
  for (size_t j = 0; j < 10; ++j) {
    a(0, j) = rng.Gaussian();
    a(1, j) = rng.Gaussian();
    a(2, j) = a(0, j) + a(1, j);
  }
  SvdResult svd = ThinSvd(a);
  EXPECT_EQ(svd.singular_values.size(), 2u);
  EXPECT_TRUE(ReconstructFromSvd(svd).ApproxEquals(a, 1e-8));
}

TEST(SvdTest, KnownSingularValues) {
  // diag(3, 2) embedded in 2x4.
  Matrix a(2, 4);
  a(0, 0) = 3.0;
  a(1, 1) = 2.0;
  SvdResult svd = ThinSvd(a);
  ASSERT_EQ(svd.singular_values.size(), 2u);
  EXPECT_NEAR(svd.singular_values[0], 3.0, 1e-12);
  EXPECT_NEAR(svd.singular_values[1], 2.0, 1e-12);
}

TEST(SvdTest, EmptyMatrix) {
  SvdResult svd = ThinSvd(Matrix());
  EXPECT_TRUE(svd.singular_values.empty());
}

TEST(SvdTest, ZeroMatrixHasNoSingularValues) {
  SvdResult svd = ThinSvd(Matrix(4, 6));
  EXPECT_TRUE(svd.singular_values.empty());
}

TEST(SvdTest, SingularValuesHelperPadsZeros) {
  Matrix a(3, 8);
  a(0, 0) = 5.0;  // Rank 1.
  std::vector<double> sv = SingularValues(a);
  ASSERT_EQ(sv.size(), 3u);
  EXPECT_NEAR(sv[0], 5.0, 1e-10);
  EXPECT_NEAR(sv[1], 0.0, 1e-8);
}

TEST(SvdTest, FrobeniusIdentity) {
  // ||A||_F^2 = sum sigma_i^2.
  Matrix a = RandomMatrix(12, 9, 7);
  SvdResult svd = ThinSvd(a);
  double sum = 0.0;
  for (double s : svd.singular_values) sum += s * s;
  EXPECT_NEAR(sum, a.FrobeniusNormSq(), 1e-8 * a.FrobeniusNormSq());
}

}  // namespace
}  // namespace swsketch
