// Tests for the tridiagonalization + QL symmetric eigensolver, validated
// against the Jacobi reference.
#include "linalg/tridiag_eigen.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "util/random.h"
#include "util/timer.h"

namespace swsketch {
namespace {

Matrix RandomSymmetric(size_t n, uint64_t seed) {
  Rng rng(seed);
  Matrix m(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i; j < n; ++j) {
      const double v = rng.Gaussian();
      m(i, j) = v;
      m(j, i) = v;
    }
  }
  return m;
}

Matrix RandomPsd(size_t n, size_t inner, uint64_t seed) {
  Rng rng(seed);
  Matrix a(inner, n);
  for (size_t i = 0; i < inner; ++i) {
    for (size_t j = 0; j < n; ++j) a(i, j) = rng.Gaussian();
  }
  return a.Gram();
}

Matrix Reconstruct(const SymmetricEigen& eig) {
  const size_t n = eig.eigenvalues.size();
  Matrix m(n, n);
  for (size_t c = 0; c < n; ++c) {
    std::vector<double> v(n);
    for (size_t r = 0; r < n; ++r) v[r] = eig.eigenvectors(r, c);
    m.AddOuterProduct(v, eig.eigenvalues[c]);
  }
  return m;
}

TEST(TridiagEigenTest, MatchesJacobiEigenvalues) {
  for (size_t n : {2u, 5u, 17u, 40u, 80u}) {
    Matrix m = RandomSymmetric(n, 100 + n);
    SymmetricEigen tq = TridiagEigen(m);
    SymmetricEigen jc = JacobiEigen(m);
    ASSERT_EQ(tq.eigenvalues.size(), n);
    double scale = std::max(std::fabs(jc.eigenvalues.front()),
                            std::fabs(jc.eigenvalues.back()));
    for (size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(tq.eigenvalues[i], jc.eigenvalues[i], 1e-9 * scale)
          << "n=" << n << " i=" << i;
    }
  }
}

TEST(TridiagEigenTest, ReconstructsMatrix) {
  Matrix m = RandomSymmetric(33, 7);
  EXPECT_TRUE(Reconstruct(TridiagEigen(m)).ApproxEquals(m, 1e-9));
}

TEST(TridiagEigenTest, EigenvectorsOrthonormal) {
  SymmetricEigen eig = TridiagEigen(RandomSymmetric(25, 8));
  const Matrix& v = eig.eigenvectors;
  for (size_t a = 0; a < 25; ++a) {
    for (size_t b = 0; b < 25; ++b) {
      double dot = 0.0;
      for (size_t r = 0; r < 25; ++r) dot += v(r, a) * v(r, b);
      EXPECT_NEAR(dot, a == b ? 1.0 : 0.0, 1e-9);
    }
  }
}

TEST(TridiagEigenTest, SortedDescending) {
  SymmetricEigen eig = TridiagEigen(RandomSymmetric(30, 9));
  EXPECT_TRUE(
      std::is_sorted(eig.eigenvalues.rbegin(), eig.eigenvalues.rend()));
}

TEST(TridiagEigenTest, PsdStaysNonNegative) {
  SymmetricEigen eig = TridiagEigen(RandomPsd(40, 60, 10));
  for (double l : eig.eigenvalues) EXPECT_GE(l, -1e-8);
}

TEST(TridiagEigenTest, SmallSizesAndEdgeCases) {
  Matrix one{{5.0}};
  SymmetricEigen e1 = TridiagEigen(one);
  EXPECT_DOUBLE_EQ(e1.eigenvalues[0], 5.0);

  Matrix diag{{2, 0, 0}, {0, 3, 0}, {0, 0, 1}};
  SymmetricEigen ed = TridiagEigen(diag);
  EXPECT_NEAR(ed.eigenvalues[0], 3.0, 1e-12);
  EXPECT_NEAR(ed.eigenvalues[2], 1.0, 1e-12);

  SymmetricEigen ez = TridiagEigen(Matrix(4, 4));
  for (double l : ez.eigenvalues) EXPECT_EQ(l, 0.0);
}

TEST(TridiagEigenTest, RepeatedEigenvalues) {
  Matrix m = Matrix::Identity(6);
  m.Scale(3.0);
  SymmetricEigen eig = TridiagEigen(m);
  for (double l : eig.eigenvalues) EXPECT_NEAR(l, 3.0, 1e-12);
  EXPECT_TRUE(Reconstruct(eig).ApproxEquals(m, 1e-10));
}

TEST(TridiagEigenTest, LowRankMatrix) {
  Matrix m = RandomPsd(30, 4, 11);  // Rank 4.
  SymmetricEigen eig = TridiagEigen(m);
  for (size_t i = 4; i < 30; ++i) {
    EXPECT_NEAR(eig.eigenvalues[i], 0.0, 1e-8 * eig.eigenvalues[0]);
  }
  EXPECT_TRUE(Reconstruct(eig).ApproxEquals(m, 1e-8));
}

TEST(SymmetricEigenSolveTest, DispatchesConsistently) {
  for (size_t n : {8u, 32u, 33u, 100u}) {
    Matrix m = RandomPsd(n, n + 10, 200 + n);
    SymmetricEigen fast = SymmetricEigenSolve(m);
    SymmetricEigen ref = JacobiEigen(m);
    for (size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(fast.eigenvalues[i], ref.eigenvalues[i],
                  1e-8 * std::max(1.0, ref.eigenvalues[0]));
    }
  }
}

TEST(TridiagEigenTest, FasterThanJacobiAtScale) {
  Matrix m = RandomPsd(200, 250, 12);
  Timer t1;
  TridiagEigen(m);
  const double tridiag_s = t1.ElapsedSeconds();
  Timer t2;
  JacobiEigen(m);
  const double jacobi_s = t2.ElapsedSeconds();
  // Not a strict perf assertion (CI noise), but tridiag should never be
  // dramatically slower; typically it is ~10x faster.
  EXPECT_LT(tridiag_s, jacobi_s * 1.5);
}

}  // namespace
}  // namespace swsketch
