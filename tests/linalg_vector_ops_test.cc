// Tests for the vector kernels.
#include "linalg/vector_ops.h"

#include <cmath>

#include <gtest/gtest.h>

namespace swsketch {
namespace {

TEST(VectorOpsTest, Dot) {
  std::vector<double> a{1, 2, 3}, b{4, 5, 6};
  EXPECT_DOUBLE_EQ(Dot(a, b), 32.0);
}

TEST(VectorOpsTest, NormAndNormSq) {
  std::vector<double> v{3, 4};
  EXPECT_DOUBLE_EQ(NormSq(v), 25.0);
  EXPECT_DOUBLE_EQ(Norm(v), 5.0);
}

TEST(VectorOpsTest, Axpy) {
  std::vector<double> x{1, 2}, y{10, 20};
  Axpy(3.0, x, y);
  EXPECT_DOUBLE_EQ(y[0], 13.0);
  EXPECT_DOUBLE_EQ(y[1], 26.0);
}

TEST(VectorOpsTest, ScaleInPlace) {
  std::vector<double> x{2, -4};
  ScaleInPlace(x, 0.5);
  EXPECT_DOUBLE_EQ(x[0], 1.0);
  EXPECT_DOUBLE_EQ(x[1], -2.0);
}

TEST(VectorOpsTest, NormalizeUnit) {
  std::vector<double> v{3, 4};
  const double n = Normalize(v);
  EXPECT_DOUBLE_EQ(n, 5.0);
  EXPECT_NEAR(Norm(v), 1.0, 1e-15);
}

TEST(VectorOpsTest, NormalizeTinyZeroes) {
  std::vector<double> v{0.0, 0.0};
  EXPECT_DOUBLE_EQ(Normalize(v), 0.0);
  EXPECT_DOUBLE_EQ(v[0], 0.0);
}

TEST(VectorOpsTest, GaussianVectorDeterministic) {
  auto a = GaussianVector(16, 99);
  auto b = GaussianVector(16, 99);
  EXPECT_EQ(a, b);
  auto c = GaussianVector(16, 100);
  EXPECT_NE(a, c);
}

}  // namespace
}  // namespace swsketch
