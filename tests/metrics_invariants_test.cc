// Cross-cutting invariants over the metrics every sketch reports
// (ISSUE 5): the counters are not decorative — each family obeys a
// conservation law the implementation must maintain, checked here with
// before/after deltas against the global registry.
//
//   - query caches: hits + misses == queries (LM and DI), and the nested
//     merge/cover caches account exactly for the miss path;
//   - block ledgers: closed + loaded == merges + expired + discarded +
//     live (LM), without the merge term for DI, where `live` is the
//     live_blocks gauge — and destruction settles the ledger to zero;
//   - FD shrinks: the amortized schedule is analytic — with full-rank
//     Gaussian input, shrinks(n) = 1 + floor((n - cap) / (cap - r + 1)),
//     and the route counters attribute every shrink;
//   - ConcurrentSketch: snapshots_published == mutations + snapshot_ctors
//     while only snapshot-mode instances mutate;
//   - samplers: every priority draw is conserved as a live candidate, a
//     replacement eviction, or a front expiry;
//   - window buffer gauges mirror the buffer's actual footprint.
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "amm/amm_sketch.h"
#include "core/concurrent_sketch.h"
#include "core/dump_snapshot.h"
#include "core/dyadic_interval.h"
#include "core/factory.h"
#include "core/logarithmic_method.h"
#include "core/swor.h"
#include "linalg/matrix.h"
#include "service/tenant_manager.h"
#include "sketch/frequent_directions.h"
#include "stream/window_buffer.h"
#include "util/metrics.h"
#include "util/random.h"
#include "util/serialize.h"

namespace swsketch {
namespace {

uint64_t C(const std::string& name) {
  return MetricsRegistry::Global().GetCounter(name)->Value();
}
int64_t G(const std::string& name) {
  return MetricsRegistry::Global().GetGauge(name)->Value();
}

Matrix GaussianRows(size_t n, size_t d, uint64_t seed) {
  Rng rng(seed);
  Matrix m(n, d);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < d; ++j) m(i, j) = rng.Gaussian();
  }
  return m;
}

TEST(MetricsInvariantsTest, LmQueryCacheAccountsForEveryQuery) {
  const size_t d = 12;
  const Matrix rows = GaussianRows(300, d, 1);
  const uint64_t q0 = C("lm_fd.queries");
  const uint64_t h0 = C("lm_fd.query_cache_hits");
  const uint64_t m0 = C("lm_fd.query_cache_misses");
  const uint64_t mh0 = C("lm_fd.merge_cache_hits");
  const uint64_t mm0 = C("lm_fd.merge_cache_misses");
  {
    LmFd::Options opt;
    opt.ell = 8;
    opt.blocks_per_level = 3;
    opt.block_capacity = 8.0 * static_cast<double>(d);
    LmFd lm(d, WindowSpec::Sequence(120), opt);
    uint64_t issued = 0;
    for (size_t i = 0; i < rows.rows(); ++i) {
      lm.Update(rows.Row(i), static_cast<double>(i + 1));
      if (i % 3 == 0) {
        (void)lm.Query();
        (void)lm.Query();  // Guaranteed-warm repeat.
        issued += 2;
      }
    }
    EXPECT_EQ(C("lm_fd.queries") - q0, issued);
  }
  const uint64_t dq = C("lm_fd.queries") - q0;
  const uint64_t dh = C("lm_fd.query_cache_hits") - h0;
  const uint64_t dm = C("lm_fd.query_cache_misses") - m0;
  EXPECT_EQ(dh + dm, dq);
  EXPECT_GT(dh, 0u);  // The warm repeats must hit.
  EXPECT_GT(dm, 0u);  // Structural churn must miss.
  // Every miss on a nonempty window consults the merged-prefix cache
  // (all queries here happen after the first ingested row).
  const uint64_t dmh = C("lm_fd.merge_cache_hits") - mh0;
  const uint64_t dmm = C("lm_fd.merge_cache_misses") - mm0;
  EXPECT_EQ(dmh + dmm, dm);
}

TEST(MetricsInvariantsTest, LmBlockLedgerBalancesAndSettlesOnDestruction) {
  const size_t d = 10;
  const Matrix rows = GaussianRows(400, d, 2);
  const uint64_t closed0 = C("lm_fd.blocks_closed");
  const uint64_t loaded0 = C("lm_fd.blocks_loaded");
  const uint64_t merges0 = C("lm_fd.level_merges");
  const uint64_t expired0 = C("lm_fd.blocks_expired");
  const uint64_t discarded0 = C("lm_fd.blocks_discarded");
  const int64_t live0 = G("lm_fd.live_blocks");

  const auto ledger_gap = [&]() -> int64_t {
    const int64_t sources =
        static_cast<int64_t>(C("lm_fd.blocks_closed") - closed0) +
        static_cast<int64_t>(C("lm_fd.blocks_loaded") - loaded0);
    const int64_t sinks =
        static_cast<int64_t>(C("lm_fd.level_merges") - merges0) +
        static_cast<int64_t>(C("lm_fd.blocks_expired") - expired0) +
        static_cast<int64_t>(C("lm_fd.blocks_discarded") - discarded0) +
        (G("lm_fd.live_blocks") - live0);
    return sources - sinks;
  };

  {
    LmFd::Options opt;
    opt.ell = 6;
    opt.blocks_per_level = 2;  // Small levels force merges.
    opt.block_capacity = 6.0 * static_cast<double>(d);
    LmFd lm(d, WindowSpec::Sequence(100), opt);
    for (size_t i = 0; i < rows.rows(); ++i) {
      lm.Update(rows.Row(i), static_cast<double>(i + 1));
      if (i % 7 == 0) {
        EXPECT_EQ(ledger_gap(), 0) << "row " << i;
      }
    }
    EXPECT_EQ(ledger_gap(), 0);
    EXPECT_GT(C("lm_fd.blocks_closed") - closed0, 0u);
    EXPECT_GT(C("lm_fd.level_merges") - merges0, 0u);
    EXPECT_GT(C("lm_fd.blocks_expired") - expired0, 0u);
    EXPECT_GT(G("lm_fd.live_blocks"), live0);
  }
  // Destruction discards the held blocks; the ledger stays balanced and
  // the live gauge returns to its starting level.
  EXPECT_EQ(ledger_gap(), 0);
  EXPECT_EQ(G("lm_fd.live_blocks"), live0);
}

TEST(MetricsInvariantsTest, LmDeserializeLoadsBlocksIntoTheLedger) {
  const size_t d = 8;
  const Matrix rows = GaussianRows(200, d, 3);
  const uint64_t loaded0 = C("lm_fd.blocks_loaded");
  const uint64_t reloads0 = C("lm_fd.reloads");
  const int64_t live0 = G("lm_fd.live_blocks");
  {
    LmFd::Options opt;
    opt.ell = 6;
    opt.block_capacity = 6.0 * static_cast<double>(d);
    LmFd lm(d, WindowSpec::Sequence(80), opt);
    for (size_t i = 0; i < rows.rows(); ++i) {
      lm.Update(rows.Row(i), static_cast<double>(i + 1));
    }
    const size_t held = lm.NumBlocks();
    ASSERT_GT(held, 0u);
    ByteWriter w;
    lm.Serialize(&w);
    ByteReader r(w.bytes());
    auto lm2 = LmFd::Deserialize(&r);
    ASSERT_TRUE(lm2.ok());
    EXPECT_EQ(C("lm_fd.reloads") - reloads0, 1u);
    EXPECT_EQ(C("lm_fd.blocks_loaded") - loaded0, held);
    // Two instances hold `held` blocks each.
    EXPECT_EQ(G("lm_fd.live_blocks") - live0,
              static_cast<int64_t>(2 * held));
  }
  EXPECT_EQ(G("lm_fd.live_blocks"), live0);
}

TEST(MetricsInvariantsTest, DiQueryAndCoverCacheAccounting) {
  const size_t d = 12;
  const Matrix rows = GaussianRows(300, d, 4);
  double max_norm_sq = 1.0;
  for (size_t i = 0; i < rows.rows(); ++i) {
    double nn = 0.0;
    for (size_t j = 0; j < d; ++j) nn += rows(i, j) * rows(i, j);
    max_norm_sq = std::max(max_norm_sq, nn);
  }
  const uint64_t q0 = C("di_fd.queries");
  const uint64_t h0 = C("di_fd.query_cache_hits");
  const uint64_t m0 = C("di_fd.query_cache_misses");
  const uint64_t ch0 = C("di_fd.cover_cache_hits");
  const uint64_t cm0 = C("di_fd.cover_cache_misses");
  {
    DiFd::Options opt;
    opt.levels = 4;
    opt.window_size = 120;
    opt.max_norm_sq = max_norm_sq;
    opt.ell_top = 16;
    DiFd di(d, opt);
    for (size_t i = 0; i < rows.rows(); ++i) {
      di.Update(rows.Row(i), static_cast<double>(i + 1));
      if (i % 3 == 0) {
        (void)di.Query();
        (void)di.Query();
      }
    }
  }
  const uint64_t dq = C("di_fd.queries") - q0;
  const uint64_t dh = C("di_fd.query_cache_hits") - h0;
  const uint64_t dm = C("di_fd.query_cache_misses") - m0;
  EXPECT_EQ(dh + dm, dq);
  EXPECT_GT(dh, 0u);
  EXPECT_GT(dm, 0u);
  // Every result-cache miss consults the cover cache exactly once.
  EXPECT_EQ((C("di_fd.cover_cache_hits") - ch0) +
                (C("di_fd.cover_cache_misses") - cm0),
            dm);
}

TEST(MetricsInvariantsTest, DiBlockLedgerBalancesAndSettlesOnDestruction) {
  const size_t d = 10;
  const Matrix rows = GaussianRows(350, d, 5);
  const uint64_t closed0 = C("di_fd.blocks_closed");
  const uint64_t loaded0 = C("di_fd.blocks_loaded");
  const uint64_t expired0 = C("di_fd.blocks_expired");
  const uint64_t discarded0 = C("di_fd.blocks_discarded");
  const int64_t live0 = G("di_fd.live_blocks");

  const auto ledger_gap = [&]() -> int64_t {
    const int64_t sources =
        static_cast<int64_t>(C("di_fd.blocks_closed") - closed0) +
        static_cast<int64_t>(C("di_fd.blocks_loaded") - loaded0);
    const int64_t sinks =
        static_cast<int64_t>(C("di_fd.blocks_expired") - expired0) +
        static_cast<int64_t>(C("di_fd.blocks_discarded") - discarded0) +
        (G("di_fd.live_blocks") - live0);
    return sources - sinks;
  };

  {
    DiFd::Options opt;
    opt.levels = 4;
    opt.window_size = 100;
    opt.max_norm_sq = 40.0;
    opt.ell_top = 8;
    DiFd di(d, opt);
    for (size_t i = 0; i < rows.rows(); ++i) {
      di.Update(rows.Row(i), static_cast<double>(i + 1));
      if (i % 7 == 0) {
        EXPECT_EQ(ledger_gap(), 0) << "row " << i;
      }
    }
    EXPECT_EQ(ledger_gap(), 0);
    EXPECT_GT(C("di_fd.blocks_closed") - closed0, 0u);
    EXPECT_GT(C("di_fd.blocks_expired") - expired0, 0u);
  }
  EXPECT_EQ(ledger_gap(), 0);
  EXPECT_EQ(G("di_fd.live_blocks"), live0);
}

TEST(MetricsInvariantsTest, FdShrinksFollowTheAmortizedSchedule) {
  // Tall regime: capacity (= ell, buffer_factor 1) exceeds dim, so every
  // shrink takes the gram_tall route, and min(n, d) = d <= the Jacobi
  // cutoff keeps the eigensolve on the Jacobi path. Gaussian rows are
  // full rank, so each shrink leaves exactly shrink_rank - 1 rows and the
  // shrink count is an exact function of n.
  const size_t d = 16;
  const size_t ell = 32;
  const size_t n = 200;
  const Matrix rows = GaussianRows(n, d, 6);
  const uint64_t appends0 = C("fd.appends");
  const uint64_t shrinks0 = C("fd.shrinks");
  const uint64_t tall0 = C("fd.shrink_route_gram_tall");
  const uint64_t jacobi0 = C("fd.eigen_route_jacobi");

  FrequentDirections fd(d, ell);
  ASSERT_GT(fd.buffer_capacity(), d);
  for (size_t i = 0; i < n; ++i) fd.Append(rows.Row(i), i);

  const size_t cap = fd.buffer_capacity();
  const size_t cycle = cap - fd.shrink_rank() + 1;
  const size_t expected = n < cap ? 0 : 1 + (n - cap) / cycle;
  EXPECT_EQ(fd.shrink_count(), expected);
  EXPECT_EQ(C("fd.appends") - appends0, n);
  EXPECT_EQ(C("fd.shrinks") - shrinks0, fd.shrink_count());
  EXPECT_EQ(C("fd.shrink_route_gram_tall") - tall0, fd.shrink_count());
  EXPECT_EQ(C("fd.eigen_route_jacobi") - jacobi0, fd.shrink_count());
}

TEST(MetricsInvariantsTest, ConcurrentSnapshotPerMutation) {
  // In snapshot mode every mutation republishes, plus the one publish the
  // constructor issues; no other ConcurrentSketch instance may mutate
  // while this measurement runs (they share the process-wide counters).
  const uint64_t pub0 = C("concurrent.snapshots_published");
  const uint64_t mut0 = C("concurrent.mutations");
  const uint64_t ctor0 = C("concurrent.snapshot_ctors");
  const uint64_t readers0 = C("concurrent.reader_copies");

  SketchConfig config;
  config.algorithm = "lm-fd";
  config.ell = 8;
  auto inner = MakeSlidingWindowSketch(8, WindowSpec::Sequence(100), config);
  ASSERT_TRUE(inner.ok());
  ConcurrentSketch sketch(inner.take());
  Rng rng(7);
  for (int i = 0; i < 150; ++i) {
    std::vector<double> row(8);
    for (auto& v : row) v = rng.Gaussian();
    sketch.Update(row, static_cast<double>(i + 1));
  }
  sketch.AdvanceTo(200.0);
  (void)sketch.Query();

  EXPECT_EQ(C("concurrent.snapshots_published") - pub0,
            (C("concurrent.mutations") - mut0) +
                (C("concurrent.snapshot_ctors") - ctor0));
  EXPECT_EQ(C("concurrent.mutations") - mut0, 151u);  // 150 updates + advance.
  EXPECT_GT(C("concurrent.reader_copies") - readers0, 0u);
}

TEST(MetricsInvariantsTest, SworDrawsAreConserved) {
  // Every priority draw ends up exactly one of: still a live candidate,
  // evicted by a dominating arrival (replacement), or expired out the
  // window front.
  const size_t d = 6;
  const Matrix rows = GaussianRows(500, d, 8);
  const uint64_t draws0 = C("swor.priority_draws");
  const uint64_t repl0 = C("swor.replacements");
  const uint64_t exp0 = C("swor.front_expiries");
  const uint64_t rows0 = C("swor.rows_ingested");

  SworSketch::Options opt;
  opt.ell = 8;
  opt.seed = 9;
  SworSketch swor(d, WindowSpec::Sequence(64), opt);
  for (size_t i = 0; i < rows.rows(); ++i) {
    swor.Update(rows.Row(i), static_cast<double>(i + 1));
    const uint64_t draws = C("swor.priority_draws") - draws0;
    const uint64_t gone = (C("swor.replacements") - repl0) +
                          (C("swor.front_expiries") - exp0);
    ASSERT_EQ(draws, gone + swor.RowsStored()) << "row " << i;
  }
  EXPECT_EQ(C("swor.rows_ingested") - rows0, rows.rows());
  EXPECT_GT(C("swor.replacements") - repl0, 0u);
  EXPECT_GT(C("swor.front_expiries") - exp0, 0u);
}

TEST(MetricsInvariantsTest, TenantLedgerBalancesAndSettlesOnDestruction) {
  // Tenant conservation laws (service/tenant_manager.h), checked as
  // deltas against a dedicated prefix so other tests cannot interfere:
  //   (1) tenants_created == tenants + resident_discarded
  //                          + spilled_discarded
  //   (2) tenants_created + reloads == spills + resident_discarded
  //                                    + resident_tenants
  //   (3) spills == reloads + spilled_discarded + spilled_tenants
  // and destruction settles every gauge back to its baseline.
  const std::string p = "tm_ledger";
  const uint64_t created0 = C(p + ".tenants_created");
  const uint64_t spills0 = C(p + ".spills");
  const uint64_t reloads0 = C(p + ".reloads");
  const uint64_t rdisc0 = C(p + ".resident_discarded");
  const uint64_t sdisc0 = C(p + ".spilled_discarded");
  const int64_t tenants0 = G(p + ".tenants");
  const int64_t resident0 = G(p + ".resident_tenants");
  const int64_t spilled0 = G(p + ".spilled_tenants");
  const int64_t rbytes0 = G(p + ".resident_bytes");
  const int64_t sbytes0 = G(p + ".spill_bytes");
  const int64_t abytes0 = G(p + ".arena_reserved_bytes");

  const auto check_laws = [&](const char* where) {
    const int64_t created =
        static_cast<int64_t>(C(p + ".tenants_created") - created0);
    const int64_t spills = static_cast<int64_t>(C(p + ".spills") - spills0);
    const int64_t reloads = static_cast<int64_t>(C(p + ".reloads") - reloads0);
    const int64_t rdisc =
        static_cast<int64_t>(C(p + ".resident_discarded") - rdisc0);
    const int64_t sdisc =
        static_cast<int64_t>(C(p + ".spilled_discarded") - sdisc0);
    const int64_t tenants = G(p + ".tenants") - tenants0;
    const int64_t resident = G(p + ".resident_tenants") - resident0;
    const int64_t spilled = G(p + ".spilled_tenants") - spilled0;
    EXPECT_EQ(created, tenants + rdisc + sdisc) << where;
    EXPECT_EQ(created + reloads, spills + rdisc + resident) << where;
    EXPECT_EQ(spills, reloads + sdisc + spilled) << where;
  };

  const size_t d = 6;
  const Matrix rows = GaussianRows(500, d, 11);
  {
    SketchConfig config;
    config.algorithm = "lm-fd";
    config.ell = 6;
    TenantManager::Options options;
    options.metrics_prefix = p;
    options.memory_budget_bytes = 8 << 10;  // Tight: forces spill churn.
    options.min_resident_tenants = 2;
    auto made =
        TenantManager::Make(d, WindowSpec::Sequence(40), config, options);
    ASSERT_TRUE(made.ok());
    auto& manager = *made.value();
    Rng rng(12);
    for (size_t i = 0; i < rows.rows(); ++i) {
      const uint64_t key = rng.Next() % 24;
      ASSERT_TRUE(
          manager.Update(key, rows.Row(i), static_cast<double>(i + 1)).ok());
      if (i % 31 == 7) (void)manager.Query(rng.Next() % 24);
      if (i % 53 == 13) check_laws("mid-stream");
    }
    check_laws("end of stream");
    EXPECT_GT(C(p + ".spills") - spills0, 0u);
    EXPECT_GT(C(p + ".reloads") - reloads0, 0u);
    // Live gauges mirror the accessors while the manager exists.
    EXPECT_EQ(G(p + ".tenants") - tenants0,
              static_cast<int64_t>(manager.num_tenants()));
    EXPECT_EQ(G(p + ".resident_bytes") - rbytes0,
              static_cast<int64_t>(manager.resident_bytes()));
    EXPECT_EQ(G(p + ".spill_bytes") - sbytes0,
              static_cast<int64_t>(manager.spill_bytes()));
    EXPECT_EQ(G(p + ".arena_reserved_bytes") - abytes0,
              static_cast<int64_t>(manager.arena_reserved_bytes()));
  }
  // Destruction discards every tenant; laws still hold and all gauges
  // settle to baseline.
  check_laws("after destruction");
  EXPECT_EQ(G(p + ".tenants"), tenants0);
  EXPECT_EQ(G(p + ".resident_tenants"), resident0);
  EXPECT_EQ(G(p + ".spilled_tenants"), spilled0);
  EXPECT_EQ(G(p + ".resident_bytes"), rbytes0);
  EXPECT_EQ(G(p + ".spill_bytes"), sbytes0);
  EXPECT_EQ(G(p + ".arena_reserved_bytes"), abytes0);
}

// DS-FD conservation laws under a 400-op random mix (single rows, batches,
// silent advances, queries, checkpoint/restore), checked after EVERY op:
//   frames_opened + frames_loaded
//     == frames_expired + frames_discarded + live_frames
//   snapshots_taken + snapshots_loaded
//     == snapshots_evicted + snapshots_discarded + live_snapshots
//   queries == query_cache_hits + query_cache_misses
// and destruction settles both live gauges back to their starting level.
TEST(MetricsInvariantsTest, DsFdLedgersBalanceAndSettleOnDestruction) {
  const size_t d = 6;
  Rng rng(4242);

  const uint64_t q0 = C("ds_fd.queries");
  const uint64_t h0 = C("ds_fd.query_cache_hits");
  const uint64_t m0 = C("ds_fd.query_cache_misses");
  const uint64_t fopen0 = C("ds_fd.frames_opened");
  const uint64_t fload0 = C("ds_fd.frames_loaded");
  const uint64_t fexp0 = C("ds_fd.frames_expired");
  const uint64_t fdis0 = C("ds_fd.frames_discarded");
  const uint64_t stake0 = C("ds_fd.snapshots_taken");
  const uint64_t sload0 = C("ds_fd.snapshots_loaded");
  const uint64_t sevic0 = C("ds_fd.snapshots_evicted");
  const uint64_t sdis0 = C("ds_fd.snapshots_discarded");
  const uint64_t reloads0 = C("ds_fd.reloads");
  const int64_t flive0 = G("ds_fd.live_frames");
  const int64_t slive0 = G("ds_fd.live_snapshots");

  const auto check = [&](size_t op) {
    ASSERT_EQ((C("ds_fd.query_cache_hits") - h0) +
                  (C("ds_fd.query_cache_misses") - m0),
              C("ds_fd.queries") - q0)
        << "op " << op;
    const int64_t frame_sources =
        static_cast<int64_t>(C("ds_fd.frames_opened") - fopen0) +
        static_cast<int64_t>(C("ds_fd.frames_loaded") - fload0);
    const int64_t frame_sinks =
        static_cast<int64_t>(C("ds_fd.frames_expired") - fexp0) +
        static_cast<int64_t>(C("ds_fd.frames_discarded") - fdis0) +
        (G("ds_fd.live_frames") - flive0);
    ASSERT_EQ(frame_sources, frame_sinks) << "op " << op;
    const int64_t snap_sources =
        static_cast<int64_t>(C("ds_fd.snapshots_taken") - stake0) +
        static_cast<int64_t>(C("ds_fd.snapshots_loaded") - sload0);
    const int64_t snap_sinks =
        static_cast<int64_t>(C("ds_fd.snapshots_evicted") - sevic0) +
        static_cast<int64_t>(C("ds_fd.snapshots_discarded") - sdis0) +
        (G("ds_fd.live_snapshots") - slive0);
    ASSERT_EQ(snap_sources, snap_sinks) << "op " << op;
  };

  auto sketch = std::make_unique<DsFd>(
      d, WindowSpec::Time(45.0),
      DsFd::Options{.ell = 6, .snapshots_per_window = 4});
  double t = 0.0;
  for (size_t op = 0; op < 400; ++op) {
    const double dice = rng.Uniform01();
    if (dice < 0.55) {
      std::vector<double> row(d);
      for (auto& v : row) v = rng.Gaussian();
      t += rng.Exponential(2.0);
      sketch->Update(row, t);
    } else if (dice < 0.70) {
      const size_t burst = 1 + rng.UniformInt(20);
      Matrix block(burst, d);
      std::vector<double> ts(burst);
      for (size_t b = 0; b < burst; ++b) {
        for (size_t j = 0; j < d; ++j) block(b, j) = rng.Gaussian();
        t += rng.Exponential(2.0);
        ts[b] = t;
      }
      sketch->UpdateBatch(block, ts);
    } else if (dice < 0.80) {
      // Silent advance, sometimes past the whole window (total expiry).
      t += rng.Uniform01() * 60.0;
      sketch->AdvanceTo(t);
    } else if (dice < 0.95) {
      (void)sketch->Query();
    } else {
      // Checkpoint/restore: the reload books frames_loaded /
      // snapshots_loaded while the replaced sketch's destructor books the
      // matching discards, all inside one op.
      ByteWriter w;
      sketch->Serialize(&w);
      ByteReader r(w.bytes());
      auto loaded = DsFd::Deserialize(&r);
      ASSERT_TRUE(loaded.ok()) << "op " << op;
      sketch = std::make_unique<DsFd>(loaded.take());
    }
    check(op);
  }
  EXPECT_GT(C("ds_fd.frames_opened") - fopen0, 0u);
  EXPECT_GT(C("ds_fd.snapshots_taken") - stake0, 0u);
  EXPECT_GT(C("ds_fd.reloads") - reloads0, 0u);
  sketch.reset();
  check(400);
  EXPECT_EQ(G("ds_fd.live_frames"), flive0);
  EXPECT_EQ(G("ds_fd.live_snapshots"), slive0);
}

TEST(MetricsInvariantsTest, WindowBufferGaugesTrackFootprint) {
  const size_t d = 8;
  const Matrix rows = GaussianRows(120, d, 10);
  WindowBuffer buffer(WindowSpec::Sequence(50));
  for (size_t i = 0; i < rows.rows(); ++i) {
    const auto row = rows.Row(i);
    buffer.Add(Row(std::vector<double>(row.begin(), row.end()),
                   static_cast<double>(i + 1)));
    EXPECT_EQ(G("window_buffer.rows"),
              static_cast<int64_t>(buffer.size()));
    EXPECT_EQ(G("window_buffer.resident_bytes"),
              static_cast<int64_t>(buffer.size() * d * sizeof(double)));
  }
  EXPECT_EQ(buffer.size(), 50u);

  // Gram route counters move with the density dispatch: Gaussian windows
  // are dense.
  const uint64_t dense0 = C("window_buffer.gram_dense");
  (void)buffer.GramMatrix(d);
  EXPECT_EQ(C("window_buffer.gram_dense") - dense0, 1u);
}

TEST(MetricsInvariantsTest, AmmProductCacheAccountsForEveryQuery) {
  // The amm.* conservation law, for every AMM backend:
  //   product_queries == product_cache_hits + product_cache_misses
  // with hits only between mutations, and pairs_ingested counting every
  // (row_a, row_b) pair exactly once across single and batched ingest.
  const size_t da = 3, db = 4, d = da + db;
  const Matrix rows = GaussianRows(90, d, 21);
  for (const std::string algo :
       {"amm-exact", "amm-co-fd", "amm-lm-fd", "amm-di-fd"}) {
    SCOPED_TRACE(algo);
    SketchConfig config;
    config.algorithm = algo;
    config.ell = 8;
    config.amm_dim_a = da;
    config.max_norm_sq = 16.0 * static_cast<double>(d);
    auto made = MakeSlidingWindowSketch(d, WindowSpec::Sequence(40), config);
    ASSERT_TRUE(made.ok());
    auto* amm = dynamic_cast<AmmSketch*>(made->get());
    ASSERT_NE(amm, nullptr);

    const uint64_t pairs0 = C("amm.pairs_ingested");
    const uint64_t q0 = C("amm.product_queries");
    const uint64_t h0 = C("amm.product_cache_hits");
    const uint64_t m0 = C("amm.product_cache_misses");
    const auto check = [&] {
      ASSERT_EQ((C("amm.product_cache_hits") - h0) +
                    (C("amm.product_cache_misses") - m0),
                C("amm.product_queries") - q0);
    };

    double t = 0.0;
    for (size_t i = 0; i < 30; ++i) {
      t += 1.0;
      amm->Update(rows.Row(i), t);
    }
    EXPECT_EQ(C("amm.pairs_ingested") - pairs0, 30u);

    // Cold query, then a warm repeat: exactly one miss, one hit.
    (void)amm->QueryProduct();
    check();
    const uint64_t m_after_cold = C("amm.product_cache_misses");
    (void)amm->QueryProduct();
    check();
    EXPECT_EQ(C("amm.product_cache_misses"), m_after_cold)
        << "repeat query with no mutation must hit the cache";
    EXPECT_EQ(C("amm.product_cache_hits") - h0, 1u);

    // A mutation invalidates: the next product query is cold again.
    Matrix batch(20, d);
    std::vector<double> ts(20);
    for (size_t i = 0; i < 20; ++i) {
      const auto src = rows.Row(30 + i);
      for (size_t j = 0; j < d; ++j) batch(i, j) = src[j];
      t += 1.0;
      ts[i] = t;
    }
    amm->UpdateBatch(batch, ts);
    EXPECT_EQ(C("amm.pairs_ingested") - pairs0, 50u);
    (void)amm->QueryProduct();
    check();
    EXPECT_EQ(C("amm.product_cache_misses") - m0, 2u);

    // Reload: visible as amm.reloads, and the restored cache starts cold.
    ByteWriter w;
    ASSERT_TRUE(amm->SerializeTo(&w).ok());
    const uint64_t reloads0 = C("amm.reloads");
    ByteReader r(w.bytes());
    auto loaded = DeserializeSlidingWindowSketch(&r);
    ASSERT_TRUE(loaded.ok());
    EXPECT_EQ(C("amm.reloads") - reloads0, 1u);
    auto* loaded_amm = dynamic_cast<AmmSketch*>(loaded->get());
    ASSERT_NE(loaded_amm, nullptr);
    const uint64_t m_before = C("amm.product_cache_misses");
    (void)loaded_amm->QueryProduct();
    EXPECT_EQ(C("amm.product_cache_misses") - m_before, 1u)
        << "first post-load product query must be cold";
    check();
  }
}

}  // namespace
}  // namespace swsketch
