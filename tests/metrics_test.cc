// Unit tests for the metrics layer (util/metrics.h): exact sharded
// counter sums under concurrency, deterministic histogram bucketing
// independent of the recording thread count, scope/slug naming and the
// JSON / Prometheus export formats.
#include "util/metrics.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

namespace swsketch {
namespace {

TEST(CounterTest, AddAndValue) {
  Counter* c = MetricsRegistry::Global().GetCounter("test.counter_basic");
  const uint64_t before = c->Value();
  c->Add();
  c->Add(41);
  EXPECT_EQ(c->Value(), before + 42);
}

TEST(CounterTest, ShardedAddsSumExactly) {
  // Adds from many threads land in per-thread shards; Value() must return
  // the exact total regardless of how the threads were spread.
  Counter* c = MetricsRegistry::Global().GetCounter("test.counter_sharded");
  const uint64_t before = c->Value();
  constexpr int kThreads = 8;
  constexpr uint64_t kAddsPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([c] {
      for (uint64_t i = 0; i < kAddsPerThread; ++i) c->Add();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c->Value(), before + kThreads * kAddsPerThread);
}

TEST(GaugeTest, SetAddValue) {
  Gauge* g = MetricsRegistry::Global().GetGauge("test.gauge_basic");
  g->Set(100);
  EXPECT_EQ(g->Value(), 100);
  g->Add(-150);
  EXPECT_EQ(g->Value(), -50);
  g->Set(0);
  EXPECT_EQ(g->Value(), 0);
}

TEST(HistogramTest, BucketIndexIsBitWidth) {
  EXPECT_EQ(Histogram::BucketIndex(0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(1), 1u);
  EXPECT_EQ(Histogram::BucketIndex(2), 2u);
  EXPECT_EQ(Histogram::BucketIndex(3), 2u);
  EXPECT_EQ(Histogram::BucketIndex(4), 3u);
  EXPECT_EQ(Histogram::BucketIndex(7), 3u);
  EXPECT_EQ(Histogram::BucketIndex(8), 4u);
  EXPECT_EQ(Histogram::BucketIndex(1023), 10u);
  EXPECT_EQ(Histogram::BucketIndex(1024), 11u);
  EXPECT_EQ(Histogram::BucketIndex(~uint64_t{0}), Histogram::kBuckets - 1);
}

TEST(HistogramTest, BucketBoundsPartitionTheRange) {
  // Every bucket's [lower, upper) must round-trip through BucketIndex and
  // adjacent buckets must tile without gaps.
  for (size_t i = 0; i < Histogram::kBuckets; ++i) {
    const uint64_t lo = Histogram::BucketLower(i);
    EXPECT_EQ(Histogram::BucketIndex(lo), i) << "bucket " << i;
    if (i + 1 < Histogram::kBuckets) {
      EXPECT_EQ(Histogram::BucketUpper(i), Histogram::BucketLower(i + 1))
          << "bucket " << i;
      EXPECT_EQ(Histogram::BucketIndex(Histogram::BucketUpper(i) - 1), i)
          << "bucket " << i;
    }
  }
  EXPECT_EQ(Histogram::BucketUpper(Histogram::kBuckets - 1), ~uint64_t{0});
}

TEST(HistogramTest, RecordAccumulatesCountAndSum) {
  Histogram* h = MetricsRegistry::Global().GetHistogram("test.hist_basic");
  const uint64_t count_before = h->TotalCount();
  const uint64_t sum_before = h->Sum();
  h->Record(0);
  h->Record(1);
  h->Record(5);
  h->Record(1000);
  EXPECT_EQ(h->TotalCount(), count_before + 4);
  EXPECT_EQ(h->Sum(), sum_before + 1006);
  EXPECT_GE(h->BucketCount(Histogram::BucketIndex(5)), 1u);
}

TEST(HistogramTest, BucketsDeterministicAcrossThreadCounts) {
  // Recording the same multiset of values must produce identical bucket
  // vectors whether one thread or four do the recording — the invariant
  // the SWSKETCH_THREADS={1,4} CI configurations rely on.
  std::vector<uint64_t> values;
  uint64_t v = 1;
  for (int i = 0; i < 4096; ++i) {
    values.push_back(v);
    v = (v * 2862933555777941757ULL + 3037000493ULL) >> 16;
  }

  const auto record_with_threads = [&](const std::string& name,
                                       int num_threads) {
    Histogram* h = MetricsRegistry::Global().GetHistogram(name);
    std::vector<std::thread> threads;
    const size_t per = values.size() / num_threads;
    for (int t = 0; t < num_threads; ++t) {
      const size_t begin = t * per;
      const size_t end = t + 1 == num_threads ? values.size() : begin + per;
      threads.emplace_back([&, begin, end] {
        for (size_t i = begin; i < end; ++i) h->Record(values[i]);
      });
    }
    for (auto& t : threads) t.join();
    return h;
  };

  Histogram* h1 = record_with_threads("test.hist_threads1", 1);
  Histogram* h4 = record_with_threads("test.hist_threads4", 4);
  EXPECT_EQ(h1->TotalCount(), values.size());
  EXPECT_EQ(h1->Sum(), h4->Sum());
  for (size_t i = 0; i < Histogram::kBuckets; ++i) {
    EXPECT_EQ(h1->BucketCount(i), h4->BucketCount(i)) << "bucket " << i;
  }
}

TEST(ScopedTimerTest, RecordsOneSampleAndToleratesNull) {
  Histogram* h = MetricsRegistry::Global().GetHistogram("test.timer_hist");
  const uint64_t before = h->TotalCount();
  {
    ScopedTimer timer(h);
  }
  EXPECT_EQ(h->TotalCount(), before + 1);
  {
    ScopedTimer noop(nullptr);  // Must not crash.
  }
}

TEST(MetricScopeTest, SlugNormalizesSketchNames) {
  EXPECT_EQ(MetricScope::Slug("LM-FD"), "lm_fd");
  EXPECT_EQ(MetricScope::Slug("DI-RP"), "di_rp");
  EXPECT_EQ(MetricScope::Slug("SWOR-ALL"), "swor_all");
  EXPECT_EQ(MetricScope::Slug("SWR"), "swr");
  EXPECT_EQ(MetricScope::Slug("already_slugged"), "already_slugged");
  EXPECT_EQ(MetricScope::Slug("a  b--c"), "a_b_c");
}

TEST(MetricScopeTest, ScopePrefixesNames) {
  MetricScope scope("test_scope");
  Counter* c = scope.counter("events");
  EXPECT_EQ(c->name(), "test_scope.events");
  // Same name resolves to the same handle, scoped or not.
  EXPECT_EQ(c, MetricsRegistry::Global().GetCounter("test_scope.events"));
  EXPECT_EQ(scope.gauge("level")->name(), "test_scope.level");
  EXPECT_EQ(scope.histogram("lat_ns")->name(), "test_scope.lat_ns");
}

TEST(RegistryTest, LookupIsIdempotent) {
  Counter* a = MetricsRegistry::Global().GetCounter("test.idempotent");
  Counter* b = MetricsRegistry::Global().GetCounter("test.idempotent");
  EXPECT_EQ(a, b);
}

TEST(RegistryTest, SnapshotContainsRegisteredMetrics) {
  Counter* c = MetricsRegistry::Global().GetCounter("test.snap_counter");
  Gauge* g = MetricsRegistry::Global().GetGauge("test.snap_gauge");
  Histogram* h = MetricsRegistry::Global().GetHistogram("test.snap_hist");
  c->Add(7);
  g->Set(-3);
  h->Record(12);

  const MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();
  bool saw_counter = false, saw_gauge = false, saw_hist = false;
  for (const auto& [name, value] : snap.counters) {
    if (name == "test.snap_counter") {
      saw_counter = true;
      EXPECT_GE(value, 7u);
    }
  }
  for (const auto& [name, value] : snap.gauges) {
    if (name == "test.snap_gauge") {
      saw_gauge = true;
      EXPECT_EQ(value, -3);
    }
  }
  for (const auto& hd : snap.histograms) {
    if (hd.name == "test.snap_hist") {
      saw_hist = true;
      EXPECT_GE(hd.count, 1u);
      EXPECT_GE(hd.sum, 12u);
      EXPECT_FALSE(hd.buckets.empty());
      // Nonzero buckets ascending by index.
      for (size_t i = 1; i < hd.buckets.size(); ++i) {
        EXPECT_LT(hd.buckets[i - 1].first, hd.buckets[i].first);
      }
    }
  }
  EXPECT_TRUE(saw_counter);
  EXPECT_TRUE(saw_gauge);
  EXPECT_TRUE(saw_hist);

  // Snapshot sections are sorted by name (ordered-map storage).
  for (size_t i = 1; i < snap.counters.size(); ++i) {
    EXPECT_LT(snap.counters[i - 1].first, snap.counters[i].first);
  }
}

TEST(RegistryTest, JsonExportContainsMetrics) {
  Counter* c = MetricsRegistry::Global().GetCounter("test.json_counter");
  c->Add(5);
  MetricsRegistry::Global().GetHistogram("test.json_hist")->Record(9);
  const std::string json =
      MetricsRegistry::Global().Export(MetricsRegistry::ExportFormat::kJson);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"test.json_counter\""), std::string::npos);
  EXPECT_NE(json.find("\"test.json_hist\""), std::string::npos);
  // Balanced braces — cheap structural sanity without a JSON parser.
  int depth = 0;
  bool in_string = false;
  for (size_t i = 0; i < json.size(); ++i) {
    const char ch = json[i];
    if (in_string) {
      if (ch == '\\') {
        ++i;
      } else if (ch == '"') {
        in_string = false;
      }
      continue;
    }
    if (ch == '"') in_string = true;
    if (ch == '{') ++depth;
    if (ch == '}') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(RegistryTest, PrometheusExportFormat) {
  Counter* c = MetricsRegistry::Global().GetCounter("test.prom_counter");
  c->Add(3);
  Histogram* h = MetricsRegistry::Global().GetHistogram("test.prom_hist");
  h->Record(100);
  const std::string prom = MetricsRegistry::Global().Export(
      MetricsRegistry::ExportFormat::kPrometheus);
  // Dots rewritten to underscores; TYPE lines present.
  EXPECT_NE(prom.find("# TYPE test_prom_counter counter"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE test_prom_hist histogram"), std::string::npos);
  EXPECT_NE(prom.find("test_prom_hist_bucket{le=\""), std::string::npos);
  EXPECT_NE(prom.find("test_prom_hist_bucket{le=\"+Inf\"}"),
            std::string::npos);
  EXPECT_NE(prom.find("test_prom_hist_sum"), std::string::npos);
  EXPECT_NE(prom.find("test_prom_hist_count"), std::string::npos);
  EXPECT_EQ(prom.find('.'), std::string::npos)
      << "metric names must not contain dots in Prometheus exposition";
}

TEST(RegistryTest, ResetForTestZeroesButKeepsHandles) {
  Counter* c = MetricsRegistry::Global().GetCounter("test.reset_counter");
  Gauge* g = MetricsRegistry::Global().GetGauge("test.reset_gauge");
  Histogram* h = MetricsRegistry::Global().GetHistogram("test.reset_hist");
  c->Add(10);
  g->Set(10);
  h->Record(10);
  MetricsRegistry::Global().ResetForTest();
  EXPECT_EQ(c->Value(), 0u);
  EXPECT_EQ(g->Value(), 0);
  EXPECT_EQ(h->TotalCount(), 0u);
  EXPECT_EQ(h->Sum(), 0u);
  // Handles stay valid and usable.
  c->Add(2);
  EXPECT_EQ(c->Value(), 2u);
  EXPECT_EQ(c, MetricsRegistry::Global().GetCounter("test.reset_counter"));
}

}  // namespace
}  // namespace swsketch
