// Coverage for smaller surfaces: serialization reader utilities, the
// B = 0 reference floor, the LM-RP variant, and empty-window query
// semantics across frameworks.
#include <algorithm>

#include <gtest/gtest.h>

#include "core/best_rank_k.h"
#include "core/factory.h"
#include "core/logarithmic_method.h"
#include "eval/harness.h"
#include "data/synthetic.h"
#include "util/random.h"
#include "util/serialize.h"

namespace swsketch {
namespace {

TEST(ByteReaderTest, PeekDoesNotConsume) {
  ByteWriter w;
  w.Put<uint32_t>(7);
  w.Put<uint32_t>(9);
  ByteReader r(w.bytes());
  uint32_t v = 0;
  EXPECT_TRUE(r.Peek(&v));
  EXPECT_EQ(v, 7u);
  EXPECT_TRUE(r.Get(&v));
  EXPECT_EQ(v, 7u);
  EXPECT_TRUE(r.Get(&v));
  EXPECT_EQ(v, 9u);
  EXPECT_TRUE(r.AtEnd());
}

TEST(ByteReaderTest, StatusOrCorrupt) {
  ByteReader ok_reader({});
  EXPECT_TRUE(ok_reader.StatusOrCorrupt("x").ok());
  uint64_t v = 0;
  ByteReader bad_reader({});
  EXPECT_FALSE(bad_reader.Get(&v));
  EXPECT_FALSE(bad_reader.StatusOrCorrupt("x").ok());
}

TEST(ReferenceErrorsTest, ZeroErrIsLambdaOneOverFrob) {
  // Gram = diag(9, 4, 1): frob^2 = 14, lambda_1 = 9.
  Matrix gram{{9, 0, 0}, {0, 4, 0}, {0, 0, 1}};
  ReferenceErrors refs = BestAndZeroError(gram, 1, 14.0);
  EXPECT_NEAR(refs.zero_err, 9.0 / 14.0, 1e-9);
  EXPECT_NEAR(refs.best_err, 4.0 / 14.0, 1e-9);
  // k beyond rank: best err 0, zero err unchanged.
  ReferenceErrors deep = BestAndZeroError(gram, 5, 14.0);
  EXPECT_EQ(deep.best_err, 0.0);
  EXPECT_NEAR(deep.zero_err, 9.0 / 14.0, 1e-9);
}

TEST(HarnessZeroFloorTest, RecordedWhenBestRequested) {
  SyntheticStream stream(SyntheticStream::Options{
      .rows = 900, .dim = 8, .signal_dim = 3, .window = 150});
  SketchConfig config;
  config.algorithm = "lm-fd";
  config.ell = 8;
  auto sketch = MakeSlidingWindowSketch(8, WindowSpec::Sequence(150), config);
  ASSERT_TRUE(sketch.ok());
  HarnessOptions options;
  options.num_checkpoints = 3;
  options.total_rows = 900;
  options.best_k = 4;
  HarnessResult r = RunSketch(&stream, sketch->get(), options);
  ASSERT_GT(r.checkpoints.size(), 0u);
  EXPECT_GT(r.avg_zero_err, 0.0);
  for (const auto& c : r.checkpoints) {
    EXPECT_GE(c.zero_err, c.best_err);  // B = 0 is never better than BEST.
  }
}

TEST(LmRpTest, BasicOperation) {
  const size_t d = 8;
  LmRp sketch(d, WindowSpec::Sequence(200),
              LmRp::Options{.ell = 32, .blocks_per_level = 4, .seed = 5});
  Rng rng(1);
  for (int i = 0; i < 800; ++i) {
    std::vector<double> row(d);
    for (auto& v : row) v = rng.Gaussian();
    sketch.Update(row, i);
  }
  EXPECT_EQ(sketch.name(), "LM-RP");
  Matrix b = sketch.Query();
  EXPECT_EQ(b.cols(), d);
  EXPECT_GT(b.rows(), 0u);
  EXPECT_GT(b.FrobeniusNormSq(), 0.0);
  sketch.CheckInvariants();
}

TEST(EmptyWindowQueries, AllFrameworksReturnEmptyMatrices) {
  for (const char* algo :
       {"swr", "swor", "swor-all", "lm-fd", "lm-hash", "lm-rp", "exact"}) {
    SketchConfig config;
    config.algorithm = algo;
    config.ell = 8;
    auto sketch = MakeSlidingWindowSketch(4, WindowSpec::Time(5.0), config);
    ASSERT_TRUE(sketch.ok()) << algo;
    // Never updated: empty.
    EXPECT_EQ((*sketch)->Query().rows(), 0u) << algo;
    // Updated then fully expired: empty again.
    std::vector<double> row{1, 0, 0, 0};
    (*sketch)->Update(row, 0.0);
    (*sketch)->AdvanceTo(100.0);
    EXPECT_EQ((*sketch)->Query().rows(), 0u) << algo;
  }
}

TEST(FactoryTest, LmRpInKnownAlgorithms) {
  auto algos = KnownAlgorithms();
  EXPECT_NE(std::find(algos.begin(), algos.end(), "lm-rp"), algos.end());
  EXPECT_NE(std::find(algos.begin(), algos.end(), "ds-fd"), algos.end());
  EXPECT_NE(std::find(algos.begin(), algos.end(), "amm-co-fd"), algos.end());
  EXPECT_EQ(algos.size(), 16u);
}

}  // namespace
}  // namespace swsketch
