// Randomized differential testing: many seeds drive random operation
// sequences (bursty updates, silent advances, interleaved queries,
// mid-stream checkpoint/restore) against every algorithm, checking
// invariants, error sanity against the exact window, and that a restored
// sketch stays in lockstep with the original. This is the fuzz-style
// harness that catches interaction bugs the per-feature tests miss.
#include <memory>
#include <string>
#include <tuple>

#include <gtest/gtest.h>

#include "core/dyadic_interval.h"
#include "core/factory.h"
#include "core/logarithmic_method.h"
#include "eval/cov_err.h"
#include "stream/window_buffer.h"
#include "util/random.h"
#include "util/serialize.h"

namespace swsketch {
namespace {

class DifferentialFuzz
    : public ::testing::TestWithParam<std::tuple<std::string, uint64_t>> {};

TEST_P(DifferentialFuzz, RandomOpSequences) {
  const auto [algo, seed] = GetParam();
  Rng rng(seed);

  const size_t d = 4 + rng.UniformInt(8);                  // 4..11.
  const bool time_window = algo != "di-fd" && rng.Bernoulli(0.4);
  const double extent =
      time_window ? 20.0 + rng.Uniform01() * 80.0
                  : static_cast<double>(32 + rng.UniformInt(200));
  const WindowSpec window =
      time_window ? WindowSpec::Time(extent)
                  : WindowSpec::Sequence(static_cast<uint64_t>(extent));

  SketchConfig config;
  config.algorithm = algo;
  config.ell = 4 + rng.UniformInt(24);
  config.levels = 3 + rng.UniformInt(3);
  config.max_norm_sq = 16.0 * static_cast<double>(d);
  config.seed = seed;
  auto made = MakeSlidingWindowSketch(d, window, config);
  ASSERT_TRUE(made.ok()) << algo << ": " << made.status().ToString();
  auto& sketch = *made;

  std::unique_ptr<SlidingWindowSketch> twin;  // Restored copy, if any.
  WindowBuffer buffer(window);
  double t = 0.0;
  const size_t ops = 600;
  for (size_t op = 0; op < ops; ++op) {
    const double dice = rng.Uniform01();
    if (dice < 0.75) {
      // Update (occasionally a burst).
      const size_t burst = rng.Bernoulli(0.1) ? 1 + rng.UniformInt(30) : 1;
      for (size_t b = 0; b < burst; ++b) {
        std::vector<double> row(d);
        const double scale = rng.Bernoulli(0.05) ? 12.0 : 1.0;
        for (auto& v : row) v = scale * rng.Gaussian();
        t += time_window ? rng.Exponential(2.0) : 1.0;
        sketch->Update(row, t);
        if (twin) twin->Update(row, t);
        buffer.Add(Row(row, t));
      }
    } else if (dice < 0.85 && time_window) {
      // Silent advance (sometimes past the whole window).
      t += rng.Bernoulli(0.2) ? extent * 1.5 : rng.Uniform01() * extent;
      sketch->AdvanceTo(t);
      if (twin) twin->AdvanceTo(t);
      buffer.AdvanceTo(t);
    } else if (dice < 0.95) {
      // Query + sanity.
      Matrix b = sketch->Query();
      EXPECT_TRUE(b.rows() == 0 || b.cols() == d);
      if (buffer.empty()) {
        EXPECT_NEAR(b.FrobeniusNormSq(), 0.0, 1e-9) << algo;
      } else {
        const double err = CovarianceError(buffer.GramMatrix(d),
                                           buffer.FrobeniusNormSq(), b);
        EXPECT_LT(err, 1.5) << algo << " seed=" << seed << " op=" << op;
      }
      if (twin) {
        EXPECT_TRUE(twin->Query().ApproxEquals(b, 1e-9))
            << algo << " twin diverged at op " << op;
      }
    } else if (!twin) {
      // Checkpoint: spawn the restored twin mid-stream.
      ByteWriter w;
      if (sketch->SerializeTo(&w).ok()) {
        ByteReader r(w.bytes());
        auto loaded = DeserializeSlidingWindowSketch(&r);
        ASSERT_TRUE(loaded.ok()) << algo;
        twin = std::move(*loaded);
      }
    }
  }
  EXPECT_GT(sketch->RowsStored() + 1, 0u);  // Alive at the end.
}

INSTANTIATE_TEST_SUITE_P(
    Fuzz, DifferentialFuzz,
    ::testing::Combine(::testing::Values("swr", "swor", "swor-all", "lm-fd",
                                         "lm-hash", "di-fd"),
                       ::testing::Values(11u, 22u, 33u, 44u)));

TEST(DifferentialFuzzExtra, LmInvariantsUnderRandomOps) {
  // White-box invariant checking through a random op mix.
  Rng rng(99);
  LmFd sketch(5, WindowSpec::Time(40.0),
              LmFd::Options{.ell = 8, .blocks_per_level = 4});
  double t = 0.0;
  for (int op = 0; op < 3000; ++op) {
    if (rng.Bernoulli(0.9)) {
      std::vector<double> row(5);
      for (auto& v : row) v = rng.Gaussian() * (rng.Bernoulli(0.02) ? 20 : 1);
      t += rng.Exponential(1.0);
      sketch.Update(row, t);
    } else {
      t += rng.Uniform01() * 60.0;
      sketch.AdvanceTo(t);
    }
    if (op % 101 == 0) sketch.CheckInvariants();
  }
  sketch.CheckInvariants();
}

TEST(DifferentialFuzzExtra, DiInvariantsUnderRandomOps) {
  Rng rng(101);
  DiFd sketch(5, DiFd::Options{.levels = 4, .window_size = 100,
                               .max_norm_sq = 80.0, .ell_top = 8});
  double t = 0.0;
  for (int op = 0; op < 3000; ++op) {
    std::vector<double> row(5);
    for (auto& v : row) v = rng.Gaussian() * (rng.Bernoulli(0.02) ? 4 : 1);
    t += 1.0;
    sketch.Update(row, t);
    if (op % 97 == 0) {
      sketch.CheckInvariants();
      (void)sketch.Query();
    }
  }
  sketch.CheckInvariants();
}

}  // namespace
}  // namespace swsketch
