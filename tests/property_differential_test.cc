// Randomized differential testing: many seeds drive random operation
// sequences (bursty updates, silent advances, interleaved queries,
// mid-stream checkpoint/restore) against every algorithm, checking
// invariants, error sanity against the exact window, and that a restored
// sketch stays in lockstep with the original. This is the fuzz-style
// harness that catches interaction bugs the per-feature tests miss.
#include <memory>
#include <string>
#include <tuple>

#include <gtest/gtest.h>

#include "core/dyadic_interval.h"
#include "core/factory.h"
#include "core/logarithmic_method.h"
#include "service/tenant_manager.h"
#include "eval/cov_err.h"
#include "linalg/matrix.h"
#include "stream/window_buffer.h"
#include "util/metrics.h"
#include "util/random.h"
#include "util/serialize.h"

namespace swsketch {
namespace {

uint64_t MC(const std::string& name) {
  return MetricsRegistry::Global().GetCounter(name)->Value();
}
int64_t MG(const std::string& name) {
  return MetricsRegistry::Global().GetGauge(name)->Value();
}

class DifferentialFuzz
    : public ::testing::TestWithParam<std::tuple<std::string, uint64_t>> {};

TEST_P(DifferentialFuzz, RandomOpSequences) {
  const auto [algo, seed] = GetParam();
  Rng rng(seed);

  const size_t d = 4 + rng.UniformInt(8);                  // 4..11.
  const bool time_window = algo != "di-fd" && rng.Bernoulli(0.4);
  const double extent =
      time_window ? 20.0 + rng.Uniform01() * 80.0
                  : static_cast<double>(32 + rng.UniformInt(200));
  const WindowSpec window =
      time_window ? WindowSpec::Time(extent)
                  : WindowSpec::Sequence(static_cast<uint64_t>(extent));

  SketchConfig config;
  config.algorithm = algo;
  config.ell = 4 + rng.UniformInt(24);
  config.levels = 3 + rng.UniformInt(3);
  config.max_norm_sq = 16.0 * static_cast<double>(d);
  config.seed = seed;
  auto made = MakeSlidingWindowSketch(d, window, config);
  ASSERT_TRUE(made.ok()) << algo << ": " << made.status().ToString();
  auto& sketch = *made;

  std::unique_ptr<SlidingWindowSketch> twin;  // Restored copy, if any.
  WindowBuffer buffer(window);
  double t = 0.0;
  const size_t ops = 600;
  for (size_t op = 0; op < ops; ++op) {
    const double dice = rng.Uniform01();
    if (dice < 0.75) {
      // Update (occasionally a burst).
      const size_t burst = rng.Bernoulli(0.1) ? 1 + rng.UniformInt(30) : 1;
      for (size_t b = 0; b < burst; ++b) {
        std::vector<double> row(d);
        const double scale = rng.Bernoulli(0.05) ? 12.0 : 1.0;
        for (auto& v : row) v = scale * rng.Gaussian();
        t += time_window ? rng.Exponential(2.0) : 1.0;
        sketch->Update(row, t);
        if (twin) twin->Update(row, t);
        buffer.Add(Row(row, t));
      }
    } else if (dice < 0.85 && time_window) {
      // Silent advance (sometimes past the whole window).
      t += rng.Bernoulli(0.2) ? extent * 1.5 : rng.Uniform01() * extent;
      sketch->AdvanceTo(t);
      if (twin) twin->AdvanceTo(t);
      buffer.AdvanceTo(t);
    } else if (dice < 0.95) {
      // Query + sanity.
      Matrix b = sketch->Query();
      EXPECT_TRUE(b.rows() == 0 || b.cols() == d);
      if (buffer.empty()) {
        EXPECT_NEAR(b.FrobeniusNormSq(), 0.0, 1e-9) << algo;
      } else {
        const double err = CovarianceError(buffer.GramMatrix(d),
                                           buffer.FrobeniusNormSq(), b);
        EXPECT_LT(err, 1.5) << algo << " seed=" << seed << " op=" << op;
      }
      if (twin) {
        EXPECT_TRUE(twin->Query().ApproxEquals(b, 1e-9))
            << algo << " twin diverged at op " << op;
      }
    } else if (!twin) {
      // Checkpoint: spawn the restored twin mid-stream.
      ByteWriter w;
      if (sketch->SerializeTo(&w).ok()) {
        ByteReader r(w.bytes());
        auto loaded = DeserializeSlidingWindowSketch(&r);
        ASSERT_TRUE(loaded.ok()) << algo;
        twin = std::move(*loaded);
      }
    }
  }
  EXPECT_GT(sketch->RowsStored() + 1, 0u);  // Alive at the end.
}

INSTANTIATE_TEST_SUITE_P(
    Fuzz, DifferentialFuzz,
    ::testing::Combine(::testing::Values("swr", "swor", "swor-all", "lm-fd",
                                         "ds-fd", "lm-hash", "di-fd"),
                       ::testing::Values(11u, 22u, 33u, 44u)));

// Randomized op-sequence driver checking the metrics conservation laws
// (see tests/metrics_invariants_test.cc for the single-path versions)
// after EVERY operation: ingest (single and batched), query, silent
// advance / expiry, and checkpoint/restore — where the restored sketch
// replaces the original, so the block ledger must absorb a load and a
// discard in the same op.
void RunLmMetricsFuzz(const WindowSpec& window, uint64_t seed) {
  const size_t d = 6;
  Rng rng(seed);
  const bool time_window = window.type() == WindowType::kTime;

  const uint64_t q0 = MC("lm_fd.queries");
  const uint64_t h0 = MC("lm_fd.query_cache_hits");
  const uint64_t m0 = MC("lm_fd.query_cache_misses");
  const uint64_t mh0 = MC("lm_fd.merge_cache_hits");
  const uint64_t mm0 = MC("lm_fd.merge_cache_misses");
  const uint64_t closed0 = MC("lm_fd.blocks_closed");
  const uint64_t loaded0 = MC("lm_fd.blocks_loaded");
  const uint64_t merges0 = MC("lm_fd.level_merges");
  const uint64_t expired0 = MC("lm_fd.blocks_expired");
  const uint64_t discarded0 = MC("lm_fd.blocks_discarded");
  const int64_t live0 = MG("lm_fd.live_blocks");
  uint64_t empty_results = 0;  // Queries that returned an empty matrix.

  const auto check = [&](size_t op) {
    const uint64_t dq = MC("lm_fd.queries") - q0;
    const uint64_t dh = MC("lm_fd.query_cache_hits") - h0;
    const uint64_t dm = MC("lm_fd.query_cache_misses") - m0;
    ASSERT_EQ(dh + dm, dq) << "op " << op;
    // Every nonempty-window miss consults the merge cache exactly once;
    // empty-window queries short-circuit as misses.
    ASSERT_EQ((MC("lm_fd.merge_cache_hits") - mh0) +
                  (MC("lm_fd.merge_cache_misses") - mm0) + empty_results,
              dm)
        << "op " << op;
    const int64_t sources =
        static_cast<int64_t>(MC("lm_fd.blocks_closed") - closed0) +
        static_cast<int64_t>(MC("lm_fd.blocks_loaded") - loaded0);
    const int64_t sinks =
        static_cast<int64_t>(MC("lm_fd.level_merges") - merges0) +
        static_cast<int64_t>(MC("lm_fd.blocks_expired") - expired0) +
        static_cast<int64_t>(MC("lm_fd.blocks_discarded") - discarded0) +
        (MG("lm_fd.live_blocks") - live0);
    ASSERT_EQ(sources, sinks) << "op " << op;
  };

  LmFd::Options opt;
  opt.ell = 6;
  opt.blocks_per_level = 2;
  opt.block_capacity = 6.0 * d;
  auto sketch = std::make_unique<LmFd>(d, window, opt);
  double t = 0.0;
  for (size_t op = 0; op < 400; ++op) {
    const double dice = rng.Uniform01();
    if (dice < 0.55) {
      std::vector<double> row(d);
      for (auto& v : row) v = rng.Gaussian();
      t += time_window ? rng.Exponential(2.0) : 1.0;
      sketch->Update(row, t);
    } else if (dice < 0.70) {
      const size_t burst = 1 + rng.UniformInt(20);
      Matrix block(burst, d);
      std::vector<double> ts(burst);
      for (size_t b = 0; b < burst; ++b) {
        for (size_t j = 0; j < d; ++j) block(b, j) = rng.Gaussian();
        t += time_window ? rng.Exponential(2.0) : 1.0;
        ts[b] = t;
      }
      sketch->UpdateBatch(block, ts);
    } else if (dice < 0.80) {
      // Expiry without arrivals (a sequence window only slides on
      // arrivals, so AdvanceTo(t) is then a no-op — still an op).
      t += time_window ? rng.Uniform01() * 60.0 : 0.0;
      sketch->AdvanceTo(t);
    } else if (dice < 0.95) {
      const Matrix b = sketch->Query();
      if (b.rows() == 0) ++empty_results;
    } else {
      ByteWriter w;
      sketch->Serialize(&w);
      ByteReader r(w.bytes());
      auto loaded = LmFd::Deserialize(&r);
      ASSERT_TRUE(loaded.ok()) << "op " << op;
      sketch = std::make_unique<LmFd>(loaded.take());
    }
    check(op);
  }
  sketch.reset();
  check(400);
  EXPECT_EQ(MG("lm_fd.live_blocks"), live0);
}

TEST(DifferentialFuzzExtra, LmMetricsInvariantsUnderRandomOpsSequence) {
  RunLmMetricsFuzz(WindowSpec::Sequence(90), 2024);
}

TEST(DifferentialFuzzExtra, LmMetricsInvariantsUnderRandomOpsTime) {
  RunLmMetricsFuzz(WindowSpec::Time(45.0), 2025);
}

TEST(DifferentialFuzzExtra, DiMetricsInvariantsUnderRandomOps) {
  const size_t d = 6;
  Rng rng(77);

  const uint64_t q0 = MC("di_fd.queries");
  const uint64_t h0 = MC("di_fd.query_cache_hits");
  const uint64_t m0 = MC("di_fd.query_cache_misses");
  const uint64_t ch0 = MC("di_fd.cover_cache_hits");
  const uint64_t cm0 = MC("di_fd.cover_cache_misses");
  const uint64_t closed0 = MC("di_fd.blocks_closed");
  const uint64_t loaded0 = MC("di_fd.blocks_loaded");
  const uint64_t expired0 = MC("di_fd.blocks_expired");
  const uint64_t discarded0 = MC("di_fd.blocks_discarded");
  const int64_t live0 = MG("di_fd.live_blocks");

  const auto check = [&](size_t op) {
    const uint64_t dm = MC("di_fd.query_cache_misses") - m0;
    ASSERT_EQ((MC("di_fd.query_cache_hits") - h0) + dm,
              MC("di_fd.queries") - q0)
        << "op " << op;
    ASSERT_EQ((MC("di_fd.cover_cache_hits") - ch0) +
                  (MC("di_fd.cover_cache_misses") - cm0),
              dm)
        << "op " << op;
    const int64_t sources =
        static_cast<int64_t>(MC("di_fd.blocks_closed") - closed0) +
        static_cast<int64_t>(MC("di_fd.blocks_loaded") - loaded0);
    const int64_t sinks =
        static_cast<int64_t>(MC("di_fd.blocks_expired") - expired0) +
        static_cast<int64_t>(MC("di_fd.blocks_discarded") - discarded0) +
        (MG("di_fd.live_blocks") - live0);
    ASSERT_EQ(sources, sinks) << "op " << op;
  };

  DiFd::Options opt;
  opt.levels = 4;
  opt.window_size = 90;
  opt.max_norm_sq = 16.0 * d;
  opt.ell_top = 8;
  auto sketch = std::make_unique<DiFd>(d, opt);
  double t = 0.0;
  for (size_t op = 0; op < 400; ++op) {
    const double dice = rng.Uniform01();
    if (dice < 0.60) {
      std::vector<double> row(d);
      for (auto& v : row) v = rng.Gaussian();
      t += 1.0;
      sketch->Update(row, t);
    } else if (dice < 0.75) {
      const size_t burst = 1 + rng.UniformInt(20);
      Matrix block(burst, d);
      std::vector<double> ts(burst);
      for (size_t b = 0; b < burst; ++b) {
        for (size_t j = 0; j < d; ++j) block(b, j) = rng.Gaussian();
        t += 1.0;
        ts[b] = t;
      }
      sketch->UpdateBatch(block, ts);
    } else if (dice < 0.92) {
      (void)sketch->Query();
    } else {
      ByteWriter w;
      sketch->Serialize(&w);
      ByteReader r(w.bytes());
      auto loaded = DiFd::Deserialize(&r);
      ASSERT_TRUE(loaded.ok()) << "op " << op;
      sketch = std::make_unique<DiFd>(loaded.take());
    }
    check(op);
  }
  sketch.reset();
  check(400);
  EXPECT_EQ(MG("di_fd.live_blocks"), live0);
}

TEST(DifferentialFuzzExtra, LmInvariantsUnderRandomOps) {
  // White-box invariant checking through a random op mix.
  Rng rng(99);
  LmFd sketch(5, WindowSpec::Time(40.0),
              LmFd::Options{.ell = 8, .blocks_per_level = 4});
  double t = 0.0;
  for (int op = 0; op < 3000; ++op) {
    if (rng.Bernoulli(0.9)) {
      std::vector<double> row(5);
      for (auto& v : row) v = rng.Gaussian() * (rng.Bernoulli(0.02) ? 20 : 1);
      t += rng.Exponential(1.0);
      sketch.Update(row, t);
    } else {
      t += rng.Uniform01() * 60.0;
      sketch.AdvanceTo(t);
    }
    if (op % 101 == 0) sketch.CheckInvariants();
  }
  sketch.CheckInvariants();
}

TEST(DifferentialFuzzExtra, DiInvariantsUnderRandomOps) {
  Rng rng(101);
  DiFd sketch(5, DiFd::Options{.levels = 4, .window_size = 100,
                               .max_norm_sq = 80.0, .ell_top = 8});
  double t = 0.0;
  for (int op = 0; op < 3000; ++op) {
    std::vector<double> row(5);
    for (auto& v : row) v = rng.Gaussian() * (rng.Bernoulli(0.02) ? 4 : 1);
    t += 1.0;
    sketch.Update(row, t);
    if (op % 97 == 0) {
      sketch.CheckInvariants();
      (void)sketch.Query();
    }
  }
  sketch.CheckInvariants();
}

// Differential fuzz over the multi-tenant manager: random interleavings
// of single-row updates, keyed batches, forced evictions, queries and
// silent advances against a per-key map of standalone sketches. With a
// deterministic backend (LM-FD) and a budget tight enough to spill
// organically, every queried tenant must stay in byte lockstep with its
// reference — eviction, reload and keyed grouping must all be invisible.
TEST(DifferentialFuzzExtra, TenantManagerLockstepUnderRandomOps) {
  for (const uint64_t seed : {51u, 52u, 53u}) {
    Rng rng(seed);
    const size_t d = 5;
    const size_t num_keys = 10;
    SketchConfig config;
    config.algorithm = "lm-fd";
    config.ell = 5;
    config.seed = seed;
    const WindowSpec window = WindowSpec::Sequence(48);
    TenantManager::Options options;
    options.metrics_prefix = "tm_fuzz";
    options.memory_budget_bytes = 48 << 10;
    options.min_resident_tenants = 2;
    auto made = TenantManager::Make(d, window, config, options);
    ASSERT_TRUE(made.ok());
    auto& manager = *made.value();

    std::vector<std::unique_ptr<SlidingWindowSketch>> reference;
    for (size_t k = 0; k < num_keys; ++k) {
      auto r = MakeSlidingWindowSketch(d, window, config);
      ASSERT_TRUE(r.ok());
      reference.push_back(r.take());
    }

    double t = 0.0;
    Matrix scratch(64, d);
    for (size_t op = 0; op < 400; ++op) {
      const double dice = rng.Uniform01();
      if (dice < 0.35) {
        // Single-row update on a random key.
        const uint64_t key = rng.Next() % num_keys;
        std::vector<double> row(d);
        for (auto& v : row) v = rng.Gaussian();
        t += 1.0;
        ASSERT_TRUE(manager.Update(key, row, t).ok()) << "op " << op;
        reference[key]->Update(row, t);
      } else if (dice < 0.65) {
        // Keyed batch with random interleaving.
        const size_t batch = 1 + rng.UniformInt(30);
        scratch.ResetShape(batch, d);
        std::vector<KeyedRow> keyed(batch);
        for (size_t j = 0; j < batch; ++j) {
          const uint64_t key = rng.Next() % num_keys;
          for (size_t c = 0; c < d; ++c) scratch(j, c) = rng.Gaussian();
          t += 1.0;
          keyed[j] = KeyedRow{key, t, scratch.Row(j)};
          reference[key]->Update(scratch.Row(j), t);
        }
        ASSERT_TRUE(manager.UpdateKeyed(keyed).ok()) << "op " << op;
      } else if (dice < 0.75) {
        // Forced eviction of a random key (NotFound is fine pre-touch).
        (void)manager.EvictTenant(rng.Next() % num_keys);
      } else if (dice < 0.85) {
        // Silent advance on a random key (no-op for sequence windows but
        // still exercises the reload-on-touch path).
        const uint64_t key = rng.Next() % num_keys;
        ASSERT_TRUE(manager.AdvanceTo(key, t).ok()) << "op " << op;
        reference[key]->AdvanceTo(t);
      } else {
        const uint64_t key = rng.Next() % num_keys;
        auto got = manager.Query(key);
        ASSERT_TRUE(got.ok()) << "op " << op;
        // An untouched key yields an empty result AND no tenant in the
        // reference-lockstep sense: reference holds an empty sketch.
        const Matrix want = reference[key]->Query();
        if (got.value().rows() == 0) {
          ASSERT_EQ(want.FrobeniusNormSq(), 0.0) << "op " << op;
        } else {
          ASSERT_EQ(got.value().rows(), want.rows()) << "op " << op;
          ASSERT_EQ(got.value().MaxAbsDiff(want), 0.0)
              << "seed " << seed << " op " << op << " key " << key;
        }
      }
    }
    // Final sweep: every key must be in lockstep after the churn.
    for (size_t k = 0; k < num_keys; ++k) {
      auto got = manager.Query(k);
      ASSERT_TRUE(got.ok());
      const Matrix want = reference[k]->Query();
      if (got.value().rows() == 0) {
        EXPECT_EQ(want.FrobeniusNormSq(), 0.0) << "key " << k;
      } else {
        EXPECT_EQ(got.value().MaxAbsDiff(want), 0.0)
            << "seed " << seed << " key " << k;
      }
    }
  }
}

}  // namespace
}  // namespace swsketch
