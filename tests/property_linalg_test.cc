// Parameterized linear-algebra properties over a grid of shapes and
// seeds: decomposition identities that must hold for every input, and
// cross-solver consistency (Jacobi vs tridiagonal-QL vs Lanczos vs
// subspace iteration all agree on the same spectra).
#include <algorithm>
#include <cmath>
#include <tuple>

#include <gtest/gtest.h>

#include "linalg/jacobi_eigen.h"
#include "linalg/power_iteration.h"
#include "linalg/vector_ops.h"
#include "linalg/subspace_iteration.h"
#include "linalg/svd.h"
#include "linalg/tridiag_eigen.h"
#include "util/random.h"

namespace swsketch {
namespace {

Matrix RandomMatrix(size_t n, size_t d, uint64_t seed, double decay) {
  Rng rng(seed);
  Matrix m(n, d);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < d; ++j) {
      m(i, j) = rng.Gaussian() / (1.0 + decay * static_cast<double>(j));
    }
  }
  return m;
}

class SvdShapeProperty
    : public ::testing::TestWithParam<
          std::tuple<size_t, size_t, uint64_t, double>> {};

TEST_P(SvdShapeProperty, DecompositionIdentities) {
  const auto [n, d, seed, decay] = GetParam();
  Matrix a = RandomMatrix(n, d, seed, decay);
  SvdResult svd = ThinSvd(a);

  // (1) Reconstruction: U diag(s) Vt == A.
  Matrix us = svd.u;
  for (size_t i = 0; i < us.rows(); ++i) {
    for (size_t c = 0; c < us.cols(); ++c) {
      us(i, c) *= svd.singular_values[c];
    }
  }
  const double scale = std::sqrt(a.FrobeniusNormSq()) + 1e-12;
  EXPECT_TRUE(us.Multiply(svd.vt).ApproxEquals(a, 1e-7 * scale))
      << "n=" << n << " d=" << d;

  // (2) Ordering and positivity.
  EXPECT_TRUE(std::is_sorted(svd.singular_values.rbegin(),
                             svd.singular_values.rend()));
  for (double s : svd.singular_values) EXPECT_GT(s, 0.0);

  // (3) Frobenius identity.
  double sum_sq = 0.0;
  for (double s : svd.singular_values) sum_sq += s * s;
  EXPECT_NEAR(sum_sq, a.FrobeniusNormSq(), 1e-7 * a.FrobeniusNormSq());

  // (4) Spectral norm consistency: sigma_1 == power-iteration estimate.
  if (!svd.singular_values.empty()) {
    EXPECT_NEAR(SpectralNorm(a), svd.singular_values[0],
                1e-4 * svd.singular_values[0]);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SvdShapeProperty,
    ::testing::Combine(::testing::Values(3, 10, 40),     // n
                       ::testing::Values(4, 15, 60),     // d
                       ::testing::Values(1u, 2u),        // seed
                       ::testing::Values(0.0, 0.4)));    // spectrum decay

class EigenSolverConsistency
    : public ::testing::TestWithParam<std::tuple<size_t, uint64_t>> {};

TEST_P(EigenSolverConsistency, AllSolversAgree) {
  const auto [n, seed] = GetParam();
  Matrix gram = RandomMatrix(n + 7, n, seed, 0.2).Gram();

  const SymmetricEigen jacobi = JacobiEigen(gram);
  const SymmetricEigen tridiag = TridiagEigen(gram);
  const double scale = std::max(jacobi.eigenvalues[0], 1e-12);
  for (size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(tridiag.eigenvalues[i], jacobi.eigenvalues[i], 1e-8 * scale)
        << "i=" << i;
  }
  // Lanczos spectral norm == lambda_1.
  EXPECT_NEAR(SpectralNormSymmetric(gram), jacobi.eigenvalues[0],
              1e-6 * scale);
  // Subspace iteration top-3 match.
  const TopEigen top = TopEigenpairsPsd(gram, std::min<size_t>(3, n));
  for (size_t i = 0; i < top.values.size(); ++i) {
    EXPECT_NEAR(top.values[i], jacobi.eigenvalues[i], 1e-5 * scale);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, EigenSolverConsistency,
                         ::testing::Combine(::testing::Values(2, 6, 20, 48,
                                                              90),
                                            ::testing::Values(3u, 4u)));

class MatrixAlgebraProperty
    : public ::testing::TestWithParam<std::tuple<size_t, size_t, uint64_t>> {
};

TEST_P(MatrixAlgebraProperty, GramAndTransposeIdentities) {
  const auto [n, d, seed] = GetParam();
  Matrix a = RandomMatrix(n, d, seed, 0.0);

  // Gram == A^T A == (A^T)(A) via Multiply.
  EXPECT_TRUE(a.Gram().ApproxEquals(a.Transpose().Multiply(a), 1e-9));
  // GramOuter == A A^T.
  EXPECT_TRUE(
      a.GramOuter().ApproxEquals(a.Multiply(a.Transpose()), 1e-9));
  // Double transpose.
  EXPECT_TRUE(a.Transpose().Transpose().ApproxEquals(a, 0.0));
  // trace(A^T A) == ||A||_F^2.
  Matrix g = a.Gram();
  double trace = 0.0;
  for (size_t j = 0; j < d; ++j) trace += g(j, j);
  EXPECT_NEAR(trace, a.FrobeniusNormSq(), 1e-9 * (1.0 + a.FrobeniusNormSq()));
  // Apply == row-by-row dot products.
  Rng rng(seed + 99);
  std::vector<double> x(d), y(n);
  for (auto& v : x) v = rng.Gaussian();
  a.Apply(x, y);
  for (size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(y[i], Dot(a.Row(i), x), 1e-10 * (1.0 + std::fabs(y[i])));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MatrixAlgebraProperty,
    ::testing::Combine(::testing::Values(1, 7, 23), ::testing::Values(1, 9, 31),
                       ::testing::Values(5u, 6u)));

}  // namespace
}  // namespace swsketch
