// Statistical properties of the sliding-window samplers, swept over
// window shapes: inclusion probabilities proportional to squared norms,
// expected candidate counts near the Lemma 5.1/5.2 bounds, and unbiasedness
// of the SWR covariance estimator.
#include <cmath>
#include <tuple>

#include <gtest/gtest.h>

#include "core/swor.h"
#include "core/swr.h"
#include "util/random.h"

namespace swsketch {
namespace {

// ---------------------------------------------------------------------------
// SWR single-sample inclusion probability over the window is w_i / W.
// ---------------------------------------------------------------------------

TEST(SamplerStats, SwrWindowInclusionProportionalToNormSq) {
  // Window of 4 rows with squared norms 1, 2, 3, 4 (W = 10): sample
  // frequencies must approach 0.1, 0.2, 0.3, 0.4.
  const size_t trials = 4000;
  std::vector<int> counts(4, 0);
  for (size_t t = 0; t < trials; ++t) {
    SwrSketch sketch(2, WindowSpec::Sequence(4),
                     SwrSketch::Options{.ell = 1, .exact_frobenius = true,
                                        .seed = 1000 + t});
    // Older rows beyond the window to exercise expiry too.
    for (int i = 0; i < 8; ++i) {
      std::vector<double> junk{5.0, 0.0};
      sketch.Update(junk, i);
    }
    for (int i = 0; i < 4; ++i) {
      std::vector<double> row{std::sqrt(static_cast<double>(i + 1)), 0.0};
      row[1] = 0.001 * (i + 1);  // Distinct signature in coordinate 1.
      sketch.Update(row, 8 + i);
    }
    Matrix b = sketch.Query();
    ASSERT_EQ(b.rows(), 1u);
    // Identify which row was sampled via the coordinate-1 signature ratio.
    const double ratio = b(0, 1) / b(0, 0);
    for (int i = 0; i < 4; ++i) {
      const double expected =
          0.001 * (i + 1) / std::sqrt(static_cast<double>(i + 1));
      if (std::fabs(ratio - expected) < 1e-9) ++counts[i];
    }
  }
  for (int i = 0; i < 4; ++i) {
    const double p = static_cast<double>(i + 1) / 10.0;
    EXPECT_NEAR(counts[i] / static_cast<double>(trials), p, 0.035)
        << "row " << i;
  }
}

// ---------------------------------------------------------------------------
// SWR's estimator is unbiased: E[B^T B] = A^T A over the window.
// ---------------------------------------------------------------------------

TEST(SamplerStats, SwrCovarianceUnbiased) {
  const size_t d = 3, w = 30, reps = 600;
  Rng data_rng(1);
  std::vector<std::vector<double>> rows;
  for (size_t i = 0; i < 2 * w; ++i) {
    std::vector<double> r(d);
    for (auto& v : r) v = data_rng.Gaussian();
    rows.push_back(r);
  }
  Matrix window_gram(d, d);
  for (size_t i = w; i < 2 * w; ++i) window_gram.AddOuterProduct(rows[i]);

  Matrix mean(d, d);
  for (size_t rep = 0; rep < reps; ++rep) {
    SwrSketch sketch(d, WindowSpec::Sequence(w),
                     SwrSketch::Options{.ell = 4, .exact_frobenius = true,
                                        .seed = 500 + rep});
    for (size_t i = 0; i < rows.size(); ++i) sketch.Update(rows[i], i);
    Matrix b = sketch.Query();
    for (size_t i = 0; i < b.rows(); ++i) {
      mean.AddOuterProduct(b.Row(i), 1.0 / static_cast<double>(reps));
    }
  }
  // Mean of B^T B within a few std errors of A^T A entrywise.
  const double tol = 0.2 * window_gram(0, 0) + 2.0;
  EXPECT_TRUE(mean.ApproxEquals(window_gram, tol));
}

// ---------------------------------------------------------------------------
// Candidate counts match the lemmas across window sizes and norm spreads.
// ---------------------------------------------------------------------------

class CandidateCountProperty
    : public ::testing::TestWithParam<std::tuple<uint64_t, double>> {};

TEST_P(CandidateCountProperty, NearLogarithmicBounds) {
  const auto [window, spread] = GetParam();
  const size_t ell = 8;
  SwrSketch swr(3, WindowSpec::Sequence(window),
                SwrSketch::Options{.ell = ell, .seed = 3});
  SworSketch swor(3, WindowSpec::Sequence(window),
                  SworSketch::Options{.ell = ell, .seed = 4});
  Rng rng(5);
  double swr_sum = 0.0, swor_sum = 0.0;
  size_t samples = 0;
  for (uint64_t i = 0; i < 4 * window; ++i) {
    const double scale = std::exp(rng.Uniform(0.0, std::log(spread)));
    std::vector<double> row(3);
    for (auto& v : row) v = scale * rng.Gaussian();
    swr.Update(row, static_cast<double>(i));
    swor.Update(row, static_cast<double>(i));
    if (i > window && i % 97 == 0) {
      swr_sum += static_cast<double>(swr.RowsStored());
      swor_sum += static_cast<double>(swor.RowsStored());
      ++samples;
    }
  }
  // Lemma 5.1 / 5.2: O(ell * log(N R)). Use a generous constant of 4.
  const double log_nr =
      std::log2(static_cast<double>(window) * spread * spread * 3.0) + 1.0;
  const double bound = 4.0 * static_cast<double>(ell) * log_nr;
  EXPECT_LT(swr_sum / static_cast<double>(samples), bound)
      << "window=" << window << " spread=" << spread;
  EXPECT_LT(swor_sum / static_cast<double>(samples), bound)
      << "window=" << window << " spread=" << spread;
  // And clearly sublinear in the window.
  EXPECT_LT(swr_sum / static_cast<double>(samples),
            0.5 * static_cast<double>(window) * ell);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CandidateCountProperty,
    ::testing::Combine(::testing::Values(200u, 1000u, 4000u),
                       ::testing::Values(1.0, 30.0, 1000.0)));

}  // namespace
}  // namespace swsketch
