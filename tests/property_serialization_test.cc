// Parameterized serialization property: for every serializable algorithm
// and several (ell, window-type) combinations, the polymorphic
// save-then-load round trip reproduces the approximation exactly and the
// reloaded sketch continues identically.
#include <memory>
#include <string>
#include <tuple>

#include <gtest/gtest.h>

#include "core/factory.h"
#include "util/random.h"
#include "util/serialize.h"

namespace swsketch {
namespace {

class SerializationRoundTrip
    : public ::testing::TestWithParam<std::tuple<std::string, size_t, bool>> {
};

TEST_P(SerializationRoundTrip, PolymorphicSaveLoadContinue) {
  const auto [algo, ell, time_window] = GetParam();
  const size_t d = 9;
  const WindowSpec window =
      time_window ? WindowSpec::Time(80.0) : WindowSpec::Sequence(150);

  SketchConfig config;
  config.algorithm = algo;
  config.ell = ell;
  config.max_norm_sq = 40.0;
  config.levels = 4;
  config.seed = 11;
  auto made = MakeSlidingWindowSketch(d, window, config);
  ASSERT_TRUE(made.ok()) << made.status().ToString();
  auto& sketch = *made;

  Rng rng(5);
  double t = 0.0;
  auto next_row = [&] {
    std::vector<double> row(d);
    for (auto& v : row) v = rng.Gaussian();
    t += time_window ? rng.Exponential(2.0) : 1.0;
    return row;
  };
  for (int i = 0; i < 700; ++i) {
    auto row = next_row();
    sketch->Update(row, t);
  }

  ByteWriter writer;
  const Status s = sketch->SerializeTo(&writer);
  ASSERT_TRUE(s.ok()) << algo << ": " << s.ToString();

  ByteReader reader(writer.bytes());
  auto loaded = DeserializeSlidingWindowSketch(&reader);
  ASSERT_TRUE(loaded.ok()) << algo << ": " << loaded.status().ToString();
  EXPECT_EQ((*loaded)->name(), sketch->name());
  EXPECT_EQ((*loaded)->dim(), d);
  EXPECT_EQ((*loaded)->RowsStored(), sketch->RowsStored());
  EXPECT_TRUE((*loaded)->Query().ApproxEquals(sketch->Query(), 0.0));

  // Continue both over 300 more rows: identical evolution.
  for (int i = 0; i < 300; ++i) {
    auto row = next_row();
    sketch->Update(row, t);
    (*loaded)->Update(row, t);
  }
  EXPECT_TRUE((*loaded)->Query().ApproxEquals(sketch->Query(), 0.0));
  EXPECT_EQ((*loaded)->RowsStored(), sketch->RowsStored());
}

INSTANTIATE_TEST_SUITE_P(
    SequenceWindows, SerializationRoundTrip,
    ::testing::Combine(::testing::Values("swr", "swor", "swor-all", "lm-fd",
                                         "lm-hash", "di-fd"),
                       ::testing::Values(6, 16),
                       ::testing::Values(false)));

INSTANTIATE_TEST_SUITE_P(
    TimeWindows, SerializationRoundTrip,
    ::testing::Combine(::testing::Values("swr", "swor", "lm-fd", "lm-hash"),
                       ::testing::Values(8),
                       ::testing::Values(true)));

TEST(SerializationDispatchTest, UnsupportedAlgorithmsReportUnimplemented) {
  for (const char* algo : {"exact", "best", "di-rp", "di-hash", "lm-rp"}) {
    SketchConfig config;
    config.algorithm = algo;
    config.ell = 4;
    auto made =
        MakeSlidingWindowSketch(4, WindowSpec::Sequence(10), config);
    ASSERT_TRUE(made.ok()) << algo;
    ByteWriter writer;
    const Status s = (*made)->SerializeTo(&writer);
    EXPECT_EQ(s.code(), StatusCode::kUnimplemented) << algo;
  }
}

TEST(SerializationDispatchTest, GarbageTagRejected) {
  ByteWriter writer;
  writer.Put<uint32_t>(0x12345678);
  writer.Put<uint32_t>(1);
  ByteReader reader(writer.bytes());
  auto loaded = DeserializeSlidingWindowSketch(&reader);
  EXPECT_FALSE(loaded.ok());
}

TEST(SerializationDispatchTest, EmptyPayloadRejected) {
  ByteReader reader({});
  auto loaded = DeserializeSlidingWindowSketch(&reader);
  EXPECT_FALSE(loaded.ok());
}

}  // namespace
}  // namespace swsketch
