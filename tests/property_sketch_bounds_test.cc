// Parameterized property sweeps: theoretical guarantees checked across a
// grid of (algorithm, budget, window, data shape) combinations.
#include <cmath>
#include <memory>
#include <string>
#include <tuple>

#include <gtest/gtest.h>

#include "core/factory.h"
#include "eval/cov_err.h"
#include "linalg/power_iteration.h"
#include "sketch/frequent_directions.h"
#include "stream/window_buffer.h"
#include "util/random.h"

namespace swsketch {
namespace {

// ---------------------------------------------------------------------------
// Property: FD's covariance error never exceeds its shed-mass certificate,
// for any ell and any data distribution.
// ---------------------------------------------------------------------------

class FdBoundProperty
    : public ::testing::TestWithParam<std::tuple<size_t, double, uint64_t>> {};

TEST_P(FdBoundProperty, ErrorWithinCertificate) {
  const auto [ell, scale_spread, seed] = GetParam();
  const size_t d = 12, n = 250;
  Rng rng(seed);
  Matrix a(0, d);
  FrequentDirections fd(d, ell);
  for (size_t i = 0; i < n; ++i) {
    std::vector<double> row(d);
    // Rows with norm spread controlled by scale_spread.
    const double s = std::exp(rng.Uniform(0.0, std::log(scale_spread)));
    for (auto& v : row) v = s * rng.Gaussian();
    a.AppendRow(row);
    fd.Append(row, i);
  }
  Matrix diff = a.Gram();
  const Matrix b = fd.Approximation();
  for (size_t i = 0; i < b.rows(); ++i) diff.AddOuterProduct(b.Row(i), -1.0);
  const double err = SpectralNormSymmetric(diff);
  // Scale-aware slack: the Gram difference carries O(1e-12 * ||A||_F^2)
  // floating-point noise, which dominates when few shrinks occurred.
  EXPECT_LE(err, fd.shed_mass() * (1 + 1e-9) + 1e-9 * a.FrobeniusNormSq());
  // And the a-priori budget: shed <= ||A||_F^2 / shrink_rank.
  EXPECT_LE(fd.shed_mass(),
            a.FrobeniusNormSq() / static_cast<double>(fd.shrink_rank()) *
                (1 + 1e-9));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FdBoundProperty,
    ::testing::Combine(::testing::Values(4, 8, 16, 32),
                       ::testing::Values(1.0, 10.0, 1000.0),
                       ::testing::Values(1u, 2u, 3u)));

// ---------------------------------------------------------------------------
// Property: sliding-window sketches only reflect the window — after the
// stream switches distribution and a full window passes, the approximation
// captures the new subspace, not the old one.
// ---------------------------------------------------------------------------

class WindowFidelityProperty
    : public ::testing::TestWithParam<std::string> {};

TEST_P(WindowFidelityProperty, OldDataForgotten) {
  const std::string algo = GetParam();
  const size_t d = 8;
  const uint64_t w = 128;
  SketchConfig config;
  config.algorithm = algo;
  config.ell = 16;
  config.max_norm_sq = 4.0;  // Honest R for rows with norm^2 in [1, 4].
  config.levels = 4;
  auto sketch = MakeSlidingWindowSketch(d, WindowSpec::Sequence(w), config);
  ASSERT_TRUE(sketch.ok());

  Rng rng(9);
  // Phase 1: energy only in coordinate 0.
  for (int i = 0; i < 400; ++i) {
    std::vector<double> row(d, 0.0);
    row[0] = 1.0 + rng.Uniform01();
    (*sketch)->Update(row, i);
  }
  // Phase 2: energy only in coordinate 1, for > one full window.
  for (int i = 400; i < 700; ++i) {
    std::vector<double> row(d, 0.0);
    row[1] = 1.0 + rng.Uniform01();
    (*sketch)->Update(row, i);
  }
  Matrix b = (*sketch)->Query();
  double mass0 = 0.0, mass1 = 0.0;
  for (size_t i = 0; i < b.rows(); ++i) {
    mass0 += b(i, 0) * b(i, 0);
    mass1 += b(i, 1) * b(i, 1);
  }
  EXPECT_GT(mass1, 0.0);
  // Expired coordinate-0 energy must be (essentially) gone.
  EXPECT_LT(mass0, 0.05 * mass1) << algo;
}

INSTANTIATE_TEST_SUITE_P(Sweep, WindowFidelityProperty,
                         ::testing::Values("swr", "swor", "swor-all", "lm-fd",
                                           "lm-hash", "di-fd", "exact"));

// ---------------------------------------------------------------------------
// Property: across budgets, every sketch's covariance error on a stationary
// Gaussian window stays below a loose cap, and space stays sublinear.
// ---------------------------------------------------------------------------

class BudgetSweepProperty
    : public ::testing::TestWithParam<std::tuple<std::string, size_t>> {};

TEST_P(BudgetSweepProperty, ErrorCappedSpaceSublinear) {
  const auto [algo, ell] = GetParam();
  const size_t d = 10;
  const uint64_t w = 800;
  SketchConfig config;
  config.algorithm = algo;
  config.ell = ell;
  config.levels = 5;
  config.max_norm_sq = 60.0;
  auto sketch = MakeSlidingWindowSketch(d, WindowSpec::Sequence(w), config);
  ASSERT_TRUE(sketch.ok());

  WindowBuffer buffer(WindowSpec::Sequence(w));
  Rng rng(3);
  size_t max_rows = 0;
  for (int i = 0; i < 4000; ++i) {
    std::vector<double> row(d);
    for (auto& v : row) v = rng.Gaussian();
    (*sketch)->Update(row, i);
    buffer.Add(Row(row, i));
    max_rows = std::max(max_rows, (*sketch)->RowsStored());
  }
  const double err = CovarianceError(buffer.GramMatrix(d),
                                     buffer.FrobeniusNormSq(),
                                     (*sketch)->Query());
  EXPECT_LT(err, 0.75) << algo << " ell=" << ell;
  EXPECT_LT(max_rows, w) << algo << " ell=" << ell;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BudgetSweepProperty,
    ::testing::Combine(::testing::Values("swr", "swor", "lm-fd", "di-fd"),
                       ::testing::Values(8, 16, 32)));

}  // namespace
}  // namespace swsketch
