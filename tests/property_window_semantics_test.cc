// Window-semantics properties: what a query reflects is exactly the
// window, across window types and algorithms; plus error-budget checks
// tying the frameworks' observed error to their structural parameters.
#include <cmath>
#include <memory>
#include <string>
#include <tuple>

#include <gtest/gtest.h>

#include "core/dyadic_interval.h"
#include "core/factory.h"
#include "core/logarithmic_method.h"
#include "eval/cov_err.h"
#include "linalg/power_iteration.h"
#include "stream/window_buffer.h"
#include "util/random.h"

namespace swsketch {
namespace {

// ---------------------------------------------------------------------------
// Property: time-window queries reflect only the live time span, for every
// time-capable algorithm, under bursty arrivals with silent gaps.
// ---------------------------------------------------------------------------

class TimeWindowFidelity : public ::testing::TestWithParam<std::string> {};

TEST_P(TimeWindowFidelity, BurstsAndGaps) {
  const std::string algo = GetParam();
  const size_t d = 6;
  const double delta = 10.0;
  SketchConfig config;
  config.algorithm = algo;
  config.ell = 16;
  auto sketch = MakeSlidingWindowSketch(d, WindowSpec::Time(delta), config);
  ASSERT_TRUE(sketch.ok());

  Rng rng(1);
  // Burst 1 on coordinate 0 at t in [0, 5].
  for (int i = 0; i < 200; ++i) {
    std::vector<double> row(d, 0.0);
    row[0] = 1.0 + rng.Uniform01();
    (*sketch)->Update(row, 5.0 * i / 200.0);
  }
  // Silence, then burst 2 on coordinate 1 at t in [50, 55].
  for (int i = 0; i < 200; ++i) {
    std::vector<double> row(d, 0.0);
    row[1] = 1.0 + rng.Uniform01();
    (*sketch)->Update(row, 50.0 + 5.0 * i / 200.0);
  }
  Matrix b = (*sketch)->Query();
  double mass0 = 0.0, mass1 = 0.0;
  for (size_t i = 0; i < b.rows(); ++i) {
    mass0 += b(i, 0) * b(i, 0);
    mass1 += b(i, 1) * b(i, 1);
  }
  EXPECT_GT(mass1, 0.0) << algo;
  EXPECT_LT(mass0, 0.05 * mass1) << algo << " kept expired burst energy";

  // After a long silent advance, the window is empty.
  (*sketch)->AdvanceTo(1000.0);
  EXPECT_EQ((*sketch)->Query().rows(), 0u) << algo;
}

INSTANTIATE_TEST_SUITE_P(Sweep, TimeWindowFidelity,
                         ::testing::Values("swr", "swor", "swor-all", "lm-fd",
                                           "lm-hash", "exact"));

// ---------------------------------------------------------------------------
// Property: LM-FD's observed covariance error respects the structural
// budget ~ (FD error) + (expiry error) = 2/ell + 1/b, with slack, across
// parameter combinations.
// ---------------------------------------------------------------------------

class LmBudgetProperty
    : public ::testing::TestWithParam<std::tuple<size_t, size_t>> {};

TEST_P(LmBudgetProperty, ErrorWithinStructuralBudget) {
  const auto [ell, b] = GetParam();
  const size_t d = 12;
  const uint64_t w = 600;
  LmFd sketch(d, WindowSpec::Sequence(w),
              LmFd::Options{.ell = ell, .blocks_per_level = b});
  WindowBuffer buffer(WindowSpec::Sequence(w));
  Rng rng(2);
  double worst = 0.0;
  for (int i = 0; i < 3000; ++i) {
    std::vector<double> row(d);
    for (auto& v : row) v = rng.Gaussian();
    sketch.Update(row, i);
    buffer.Add(Row(row, i));
    if (i > 700 && i % 350 == 0) {
      worst = std::max(worst,
                       CovarianceError(buffer.GramMatrix(d),
                                       buffer.FrobeniusNormSq(),
                                       sketch.Query()));
    }
  }
  // Structural budget: FD merging error (~2/ell per the certificate,
  // compounded across merges) plus the excluded straddling block
  // (~1/b of the window mass). Allow 3x slack for the compounding.
  const double budget = 3.0 * (2.0 / static_cast<double>(ell) +
                               1.0 / static_cast<double>(b));
  EXPECT_LT(worst, budget) << "ell=" << ell << " b=" << b;
}

INSTANTIATE_TEST_SUITE_P(Sweep, LmBudgetProperty,
                         ::testing::Combine(::testing::Values(8, 16, 32),
                                            ::testing::Values(4, 8, 16)));

// ---------------------------------------------------------------------------
// Property: with a lossless per-block sketch (FD of ample size), DI's only
// error source is the skipped straddling level-1 block, so the absolute
// covariance error is bounded by the level-1 block capacity (in mass).
// ---------------------------------------------------------------------------

class DiCoverProperty : public ::testing::TestWithParam<size_t> {};

TEST_P(DiCoverProperty, ErrorBoundedByStraddlingBlockMass) {
  const size_t levels = GetParam();
  const size_t d = 8;
  const uint64_t w = 256;
  const double r_bound = 4.0;
  // ell_top huge => every block sketch is exact (rank <= d << ell).
  DiFd sketch(d, DiFd::Options{.levels = levels, .window_size = w,
                               .max_norm_sq = r_bound,
                               .ell_top = 512, .ell_min = 64});
  WindowBuffer buffer(WindowSpec::Sequence(w));
  Rng rng(3);
  const double capacity =
      static_cast<double>(w) * r_bound / std::pow(2.0, double(levels));
  for (int i = 0; i < 1500; ++i) {
    std::vector<double> row(d);
    for (auto& v : row) v = rng.Gaussian();
    Normalize(row);
    for (auto& v : row) v *= 1.0 + rng.Uniform01();  // Norm^2 in [1, 4].
    sketch.Update(row, i);
    buffer.Add(Row(row, i));
    if (i > 400 && i % 177 == 0) {
      const Matrix gram = buffer.GramMatrix(d);
      Matrix diff = gram;
      const Matrix b = sketch.Query();
      for (size_t r = 0; r < b.rows(); ++r) {
        diff.AddOuterProduct(b.Row(r), -1.0);
      }
      const double abs_err = SpectralNormSymmetric(diff);
      // Straddling block mass <= capacity + one row overshoot (<= R).
      EXPECT_LE(abs_err, capacity + r_bound + 1e-6)
          << "levels=" << levels << " at i=" << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, DiCoverProperty, ::testing::Values(3, 4, 5));

}  // namespace
}  // namespace swsketch
