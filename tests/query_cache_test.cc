// Query-cache correctness (DESIGN.md §8 "Query path"): after every
// structural event in a randomized LM/DI run — block close, level merge,
// expiry, deserialize — a cached Query() must be byte-identical to a
// freshly-constructed sketch replaying the same rows, and a repeated
// (warm) Query() must be byte-identical to the first. The structure
// version counter is the cache key; these tests also pin that it only
// moves at structural events.
#include <cmath>
#include <cstdint>
#include <functional>
#include <vector>

#include <gtest/gtest.h>

#include "core/dyadic_interval.h"
#include "core/logarithmic_method.h"
#include "linalg/matrix.h"
#include "util/random.h"
#include "util/serialize.h"

namespace swsketch {
namespace {

// Gaussian rows with ts = i + 1; every 17th row zero to exercise the
// zero-row skip paths (same shape as batch_update_test's stream).
struct TestStream {
  Matrix rows;
  std::vector<double> ts;
};

TestStream MakeStream(size_t n, size_t d, uint64_t seed) {
  Rng rng(seed);
  TestStream s;
  s.rows = Matrix(n, d);
  for (size_t i = 0; i < n; ++i) {
    if (i % 17 != 13) {
      for (size_t j = 0; j < d; ++j) s.rows(i, j) = rng.Gaussian();
    }
    s.ts.push_back(static_cast<double>(i + 1));
  }
  return s;
}

// Feeds the stream row by row into a live sketch; whenever the structure
// version moves (a block closed, merged up, or expired) — and at a coarse
// row interval as a control — asserts that (a) the possibly-cached Query()
// matches a fresh sketch replaying the same prefix bitwise, and (b) an
// immediately repeated Query() (guaranteed warm) returns the same bytes.
template <typename SketchT>
void CheckCacheAgainstReplay(const TestStream& s,
                             const std::function<SketchT()>& make) {
  SketchT live = make();
  uint64_t last_version = live.structure_version();
  size_t checks = 0;
  for (size_t i = 0; i < s.rows.rows(); ++i) {
    live.Update(s.rows.Row(i), s.ts[i]);
    const bool structural = live.structure_version() != last_version;
    const bool periodic = (i + 1) % 97 == 0;
    if (!structural && !periodic) continue;
    last_version = live.structure_version();
    ++checks;

    const Matrix q1 = live.Query();
    const Matrix q2 = live.Query();  // Warm: same version, same live set.
    ASSERT_EQ(q1.rows(), q2.rows()) << "row " << i;
    EXPECT_EQ(q1.MaxAbsDiff(q2), 0.0) << "row " << i;

    SketchT fresh = make();
    for (size_t j = 0; j <= i; ++j) fresh.Update(s.rows.Row(j), s.ts[j]);
    const Matrix qf = fresh.Query();
    ASSERT_EQ(q1.rows(), qf.rows()) << "row " << i;
    EXPECT_EQ(q1.MaxAbsDiff(qf), 0.0) << "row " << i;
  }
  EXPECT_GT(checks, 10u) << "stream produced too few structural events";
}

TEST(QueryCacheTest, LmFdMatchesFreshReplayAtEveryEvent) {
  const size_t d = 16;
  const TestStream s = MakeStream(400, d, 3);
  CheckCacheAgainstReplay<LmFd>(s, [d] {
    LmFd::Options opt;
    opt.ell = 8;
    opt.blocks_per_level = 3;  // Small levels force frequent merges.
    opt.block_capacity = 8.0 * static_cast<double>(d);
    return LmFd(d, WindowSpec::Sequence(150), opt);
  });
}

TEST(QueryCacheTest, LmHashMatchesFreshReplayAtEveryEvent) {
  const size_t d = 16;
  const TestStream s = MakeStream(400, d, 4);
  CheckCacheAgainstReplay<LmHash>(s, [d] {
    LmHash::Options opt;
    opt.ell = 8;
    opt.blocks_per_level = 3;
    opt.block_capacity = 8.0 * static_cast<double>(d);
    opt.seed = 11;
    return LmHash(d, WindowSpec::Sequence(150), opt);
  });
}

TEST(QueryCacheTest, LmFdTimeWindowExpiryInvalidates) {
  // Time window sliding between arrivals: blocks and raw rows expire
  // without any block closing, exercising the live-set shrink keying.
  const size_t d = 12;
  TestStream s = MakeStream(300, d, 5);
  Rng rng(6);
  double t = 0.0;
  for (auto& ts : s.ts) {
    t += rng.Uniform(0.1, 2.0);
    ts = t;
  }
  CheckCacheAgainstReplay<LmFd>(s, [d] {
    LmFd::Options opt;
    opt.ell = 8;
    opt.blocks_per_level = 3;
    opt.block_capacity = 8.0 * static_cast<double>(d);
    return LmFd(d, WindowSpec::Time(40.0), opt);
  });
}

TEST(QueryCacheTest, DiFdMatchesFreshReplayAtEveryEvent) {
  const size_t d = 16;
  const TestStream s = MakeStream(400, d, 7);
  double max_norm_sq = 1.0;
  for (size_t i = 0; i < s.rows.rows(); ++i) {
    double nn = 0.0;
    for (size_t j = 0; j < d; ++j) nn += s.rows(i, j) * s.rows(i, j);
    max_norm_sq = std::max(max_norm_sq, nn);
  }
  CheckCacheAgainstReplay<DiFd>(s, [d, max_norm_sq] {
    DiFd::Options opt;
    opt.levels = 4;
    opt.window_size = 150;
    opt.max_norm_sq = max_norm_sq;
    opt.ell_top = 16;
    return DiFd(d, opt);
  });
}

TEST(QueryCacheTest, DiHashMatchesFreshReplayAtEveryEvent) {
  const size_t d = 16;
  const TestStream s = MakeStream(400, d, 8);
  CheckCacheAgainstReplay<DiHash>(s, [d] {
    DiHash::Options opt;
    opt.levels = 4;
    opt.window_size = 150;
    opt.max_norm_sq = 64.0;
    opt.ell_top = 16;
    opt.seed = 13;
    return DiHash(d, opt);
  });
}

TEST(QueryCacheTest, InvalidateForcesByteIdenticalColdPath) {
  const size_t d = 16;
  const TestStream s = MakeStream(500, d, 9);
  LmFd::Options lopt;
  lopt.ell = 8;
  lopt.block_capacity = 8.0 * static_cast<double>(d);
  LmFd lm(d, WindowSpec::Sequence(200), lopt);
  DiFd::Options dopt;
  dopt.levels = 4;
  dopt.window_size = 200;
  dopt.max_norm_sq = 50.0;
  dopt.ell_top = 16;
  DiFd di(d, dopt);
  for (size_t i = 0; i < s.rows.rows(); ++i) {
    lm.Update(s.rows.Row(i), s.ts[i]);
    di.Update(s.rows.Row(i), s.ts[i]);
  }
  const Matrix lm_warm = lm.Query();
  lm.InvalidateQueryCache();
  EXPECT_EQ(lm_warm.MaxAbsDiff(lm.Query()), 0.0);
  const Matrix di_warm = di.Query();
  di.InvalidateQueryCache();
  EXPECT_EQ(di_warm.MaxAbsDiff(di.Query()), 0.0);
}

TEST(QueryCacheTest, VersionMovesOnlyOnStructuralEvents) {
  const size_t d = 8;
  LmFd::Options opt;
  opt.ell = 4;
  opt.block_capacity = 4.0 * static_cast<double>(d);
  LmFd lm(d, WindowSpec::Sequence(100), opt);
  Rng rng(10);
  uint64_t version = lm.structure_version();
  size_t bumps = 0;
  for (size_t i = 0; i < 200; ++i) {
    std::vector<double> row(d);
    for (auto& v : row) v = rng.Gaussian();
    const size_t blocks_before = lm.NumBlocks();
    lm.Update(row, static_cast<double>(i + 1));
    if (lm.structure_version() != version) {
      ++bumps;
      version = lm.structure_version();
    } else {
      // No version change => the closed-block structure is unchanged.
      EXPECT_EQ(lm.NumBlocks(), blocks_before);
    }
    // Queries never move the version.
    (void)lm.Query();
    EXPECT_EQ(lm.structure_version(), version);
  }
  EXPECT_GT(bumps, 5u);
}

TEST(QueryCacheTest, DeserializeResetsCacheAndStaysIdentical) {
  const size_t d = 12;
  const TestStream s = MakeStream(350, d, 11);
  LmFd::Options lopt;
  lopt.ell = 8;
  lopt.block_capacity = 8.0 * static_cast<double>(d);
  LmFd lm(d, WindowSpec::Sequence(120), lopt);
  DiFd::Options dopt;
  dopt.levels = 4;
  dopt.window_size = 120;
  dopt.max_norm_sq = 40.0;
  dopt.ell_top = 8;
  DiFd di(d, dopt);
  const size_t half = s.rows.rows() / 2;
  for (size_t i = 0; i < half; ++i) {
    lm.Update(s.rows.Row(i), s.ts[i]);
    di.Update(s.rows.Row(i), s.ts[i]);
  }
  // Warm the caches, then round-trip.
  const Matrix lm_q = lm.Query();
  const Matrix di_q = di.Query();

  ByteWriter lw, dw;
  lm.Serialize(&lw);
  di.Serialize(&dw);
  ByteReader lr(lw.bytes()), dr(dw.bytes());
  auto lm2 = LmFd::Deserialize(&lr);
  auto di2 = DiFd::Deserialize(&dr);
  ASSERT_TRUE(lm2.ok());
  ASSERT_TRUE(di2.ok());

  // The reloaded sketch starts cold (version reset on load) but must
  // produce the same bytes immediately and after further ingest.
  EXPECT_EQ(lm_q.MaxAbsDiff(lm2->Query()), 0.0);
  EXPECT_EQ(di_q.MaxAbsDiff(di2->Query()), 0.0);
  for (size_t i = half; i < s.rows.rows(); ++i) {
    lm.Update(s.rows.Row(i), s.ts[i]);
    lm2->Update(s.rows.Row(i), s.ts[i]);
    di.Update(s.rows.Row(i), s.ts[i]);
    di2->Update(s.rows.Row(i), s.ts[i]);
  }
  EXPECT_EQ(lm.Query().MaxAbsDiff(lm2->Query()), 0.0);
  EXPECT_EQ(di.Query().MaxAbsDiff(di2->Query()), 0.0);
}

}  // namespace
}  // namespace swsketch
