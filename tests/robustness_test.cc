// Edge-case and misuse robustness across modules: precondition deaths,
// degenerate inputs, long-run stability, and interleavings that the
// per-module tests do not reach.
#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "core/dyadic_interval.h"
#include "core/factory.h"
#include "core/logarithmic_method.h"
#include "core/swor.h"
#include "core/swr.h"
#include "eval/cov_err.h"
#include "eval/harness.h"
#include "data/synthetic.h"
#include "stream/window_buffer.h"
#include "util/random.h"

namespace swsketch {
namespace {

std::vector<double> RandomRow(Rng* rng, size_t d) {
  std::vector<double> r(d);
  for (auto& v : r) v = rng->Gaussian();
  return r;
}

TEST(MatrixRobustness, ShapePreconditionsDie) {
  Matrix a(2, 3), b(2, 3);
  EXPECT_DEATH(a.Multiply(b), "");  // 3 != 2.
  Matrix sq(3, 3);
  std::vector<double> wrong(2, 1.0);
  EXPECT_DEATH(sq.AddOuterProduct(wrong), "");
  Matrix other(3, 3);
  EXPECT_DEATH(a.AddScaled(other, 1.0), "");
  EXPECT_DEATH(a.Subtract(other), "");
  EXPECT_DEATH(a.TruncateRows(5), "");
}

TEST(MatrixRobustness, ApplyShapeChecked) {
  Matrix a(2, 3);
  std::vector<double> x(3), y(3);  // y should have 2 entries.
  EXPECT_DEATH(a.Apply(x, y), "");
}

TEST(SketchRobustness, AllZeroStreamIsHandled) {
  // Zero rows carry no information; sketches must neither crash nor
  // produce garbage.
  for (const char* algo : {"swr", "swor", "lm-fd", "di-fd"}) {
    SketchConfig config;
    config.algorithm = algo;
    config.ell = 4;
    config.max_norm_sq = 4.0;
    auto sketch = MakeSlidingWindowSketch(3, WindowSpec::Sequence(10), config);
    ASSERT_TRUE(sketch.ok()) << algo;
    std::vector<double> zero(3, 0.0);
    for (int i = 0; i < 50; ++i) (*sketch)->Update(zero, i);
    Matrix b = (*sketch)->Query();
    EXPECT_NEAR(b.FrobeniusNormSq(), 0.0, 1e-12) << algo;
  }
}

TEST(SketchRobustness, SingleRowWindow) {
  for (const char* algo : {"swr", "swor", "lm-fd", "di-fd", "exact"}) {
    SketchConfig config;
    config.algorithm = algo;
    config.ell = 4;
    config.max_norm_sq = 16.0;
    config.levels = 2;
    auto sketch = MakeSlidingWindowSketch(3, WindowSpec::Sequence(1), config);
    ASSERT_TRUE(sketch.ok()) << algo;
    Rng rng(1);
    for (int i = 0; i < 30; ++i) (*sketch)->Update(RandomRow(&rng, 3), i);
    std::vector<double> last{1.0, 2.0, 3.0};
    (*sketch)->Update(last, 30);
    // The window is exactly {last}: B^T B should be close to last^T last.
    Matrix a(0, 3);
    a.AppendRow(last);
    EXPECT_LT(CovarianceErrorDense(a, (*sketch)->Query()), 0.6) << algo;
  }
}

TEST(SketchRobustness, VeryLongRunStaysBounded) {
  // 60k updates into a small window: space stays bounded, no drift.
  LmFd lm(4, WindowSpec::Sequence(64), LmFd::Options{.ell = 8});
  SwrSketch swr(4, WindowSpec::Sequence(64), SwrSketch::Options{.ell = 8});
  Rng rng(2);
  size_t lm_max = 0, swr_max = 0;
  for (int i = 0; i < 60000; ++i) {
    auto row = RandomRow(&rng, 4);
    lm.Update(row, i);
    swr.Update(row, i);
    lm_max = std::max(lm_max, lm.RowsStored());
    swr_max = std::max(swr_max, swr.RowsStored());
  }
  lm.CheckInvariants();
  EXPECT_LT(lm_max, 600u);
  EXPECT_LT(swr_max, 400u);
  EXPECT_GT(lm.Query().rows(), 0u);
  EXPECT_GT(swr.Query().rows(), 0u);
}

TEST(SketchRobustness, AdvanceToIdempotent) {
  LmFd lm(3, WindowSpec::Time(10.0), LmFd::Options{.ell = 4});
  std::vector<double> row{1.0, 0.0, 0.0};
  lm.Update(row, 0.0);
  lm.AdvanceTo(5.0);
  lm.AdvanceTo(5.0);
  lm.AdvanceTo(5.0);
  EXPECT_EQ(lm.Query().rows(), 1u);
  EXPECT_DEATH(lm.AdvanceTo(4.0), "");  // Time cannot go backwards.
}

TEST(SketchRobustness, QueryIsRepeatable) {
  // Querying twice without updates returns the same approximation.
  for (const char* algo : {"swr", "swor", "lm-fd", "di-fd"}) {
    SketchConfig config;
    config.algorithm = algo;
    config.ell = 8;
    config.max_norm_sq = 20.0;
    auto sketch =
        MakeSlidingWindowSketch(5, WindowSpec::Sequence(50), config);
    ASSERT_TRUE(sketch.ok());
    Rng rng(3);
    for (int i = 0; i < 200; ++i) (*sketch)->Update(RandomRow(&rng, 5), i);
    Matrix b1 = (*sketch)->Query();
    Matrix b2 = (*sketch)->Query();
    EXPECT_TRUE(b1.ApproxEquals(b2, 0.0)) << algo;
  }
}

TEST(SketchRobustness, InterleavedQueriesDoNotPerturbState) {
  // Querying after every update must not change the final result compared
  // to querying once at the end.
  Rng rng(4);
  LmFd quiet(6, WindowSpec::Sequence(100), LmFd::Options{.ell = 8});
  LmFd noisy(6, WindowSpec::Sequence(100), LmFd::Options{.ell = 8});
  for (int i = 0; i < 500; ++i) {
    auto row = RandomRow(&rng, 6);
    quiet.Update(row, i);
    noisy.Update(row, i);
    if (i % 7 == 0) (void)noisy.Query();
  }
  EXPECT_TRUE(quiet.Query().ApproxEquals(noisy.Query(), 1e-12));
}

TEST(HarnessRobustness, NoTimingMode) {
  SyntheticStream stream(SyntheticStream::Options{
      .rows = 500, .dim = 6, .signal_dim = 2, .window = 100});
  SketchConfig config;
  config.algorithm = "lm-fd";
  config.ell = 8;
  auto sketch = MakeSlidingWindowSketch(6, WindowSpec::Sequence(100), config);
  ASSERT_TRUE(sketch.ok());
  HarnessOptions options;
  options.num_checkpoints = 2;
  options.total_rows = 500;
  options.measure_update_time = false;
  HarnessResult r = RunSketch(&stream, sketch->get(), options);
  EXPECT_EQ(r.avg_update_ns, 0.0);
  EXPECT_GT(r.checkpoints.size(), 0u);
}

TEST(WindowBufferRobustness, AdvanceWithoutAdds) {
  WindowBuffer buf(WindowSpec::Time(5.0));
  buf.AdvanceTo(100.0);
  EXPECT_TRUE(buf.empty());
  buf.Add(Row({1.0}, 100.0));
  buf.AdvanceTo(104.9);
  EXPECT_EQ(buf.size(), 1u);
  buf.AdvanceTo(105.1);
  EXPECT_TRUE(buf.empty());
}

TEST(GeneratorRobustness, AllGeneratorsAreDeterministic) {
  auto drain_checksum = [](RowStream* s) {
    double acc = 0.0;
    while (auto row = s->Next()) acc += row->NormSq() + row->ts;
    return acc;
  };
  SyntheticStream s1(SyntheticStream::Options{.rows = 200, .dim = 10,
                                              .signal_dim = 3, .seed = 9});
  SyntheticStream s2(SyntheticStream::Options{.rows = 200, .dim = 10,
                                              .signal_dim = 3, .seed = 9});
  EXPECT_EQ(drain_checksum(&s1), drain_checksum(&s2));
}

TEST(SworRobustness, EllOneWorks) {
  SworSketch sketch(3, WindowSpec::Sequence(20),
                    SworSketch::Options{.ell = 1, .seed = 5});
  Rng rng(6);
  for (int i = 0; i < 100; ++i) sketch.Update(RandomRow(&rng, 3), i);
  EXPECT_EQ(sketch.Query().rows(), 1u);
  EXPECT_LE(sketch.RowsStored(), 30u);
}

TEST(DiRobustness, WindowLargerThanStreamSoFar) {
  DiFd sketch(4, DiFd::Options{.levels = 3, .window_size = 100000,
                               .max_norm_sq = 20.0, .ell_top = 8});
  Rng rng(7);
  WindowBuffer buffer(WindowSpec::Sequence(100000));
  for (int i = 0; i < 300; ++i) {
    auto row = RandomRow(&rng, 4);
    sketch.Update(row, i);
    buffer.Add(Row(row, i));
  }
  // Window covers everything seen so far.
  EXPECT_LT(CovarianceError(buffer.GramMatrix(4), buffer.FrobeniusNormSq(),
                            sketch.Query()),
            0.5);
}

}  // namespace
}  // namespace swsketch
