// Golden serialization fixtures: committed byte blobs of serialized
// LM-FD / DI-FD / SWOR sketches (the v2 FD payload format) plus the exact
// bytes their post-load Query() must produce. Unlike the round-trip tests
// (serialization_test.cc), these pin the on-disk format ACROSS PRs: any
// change that reorders a field, bumps a version, or perturbs a double
// fails here, so format breaks become a deliberate fixture regeneration
// instead of a silent incompatibility.
//
// To regenerate after an intentional format change:
//
//     SWSKETCH_REGEN_GOLDEN=1 ./build/tests/serialization_golden_test
//
// which rewrites tests/fixtures/golden_*.bin in the source tree (the
// fixture dir is baked in via SWSKETCH_FIXTURES_DIR). The generating
// streams are seeded Rng draws, so fixtures are reproducible wherever
// libm produces identical doubles (the CI container does).
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "amm/amm_exact.h"
#include "amm/amm_stacked.h"
#include "core/dump_snapshot.h"
#include "core/factory.h"
#include "core/dyadic_interval.h"
#include "core/logarithmic_method.h"
#include "core/swor.h"
#include "linalg/matrix.h"
#include "util/metrics.h"
#include "util/random.h"
#include "util/serialize.h"

#ifndef SWSKETCH_FIXTURES_DIR
#error "SWSKETCH_FIXTURES_DIR must be defined by the build"
#endif

namespace swsketch {
namespace {

bool RegenMode() {
  const char* env = std::getenv("SWSKETCH_REGEN_GOLDEN");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

std::string FixturePath(const std::string& file) {
  return std::string(SWSKETCH_FIXTURES_DIR) + "/" + file;
}

std::vector<uint8_t> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << path
                         << " (regenerate with SWSKETCH_REGEN_GOLDEN=1)";
  return std::vector<uint8_t>(std::istreambuf_iterator<char>(in),
                              std::istreambuf_iterator<char>());
}

void WriteFile(const std::string& path, const std::vector<uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out.good()) << "cannot write " << path;
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

// Encodes a query result as little-endian (rows, cols, row-major doubles)
// so "deserialize-then-query is byte-stable" is literal: any ULP drift in
// the reconstruction pipeline flips fixture bytes.
std::vector<uint8_t> EncodeMatrix(const Matrix& m) {
  ByteWriter w;
  w.Put<uint64_t>(m.rows());
  w.Put<uint64_t>(m.cols());
  for (size_t i = 0; i < m.rows(); ++i) {
    for (size_t j = 0; j < m.cols(); ++j) w.Put(m(i, j));
  }
  return w.bytes();
}

// Deterministic Gaussian ingest shared by every fixture builder.
template <typename SketchT>
void Ingest(SketchT* sketch, size_t n, size_t d, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> row(d);
  for (size_t i = 0; i < n; ++i) {
    for (auto& v : row) v = rng.Gaussian();
    sketch->Update(row, static_cast<double>(i + 1));
  }
}

// Shared harness: build the live sketch, serialize it, and either (regen)
// rewrite the fixtures or (normal) assert the blob and the post-load
// query both match the committed bytes exactly. `deserialize` maps the
// committed blob back to a sketch; *regenerated is set if fixtures were
// rewritten (caller should skip).
template <typename SketchT, typename DeserializeFn>
void CheckGolden(SketchT* live, const std::string& stem,
                 DeserializeFn deserialize, bool* regenerated) {
  *regenerated = false;
  ByteWriter w;
  live->Serialize(&w);
  const std::vector<uint8_t> blob = w.bytes();

  const std::string blob_path = FixturePath(stem + ".sketch.bin");
  const std::string query_path = FixturePath(stem + ".query.bin");

  if (RegenMode()) {
    WriteFile(blob_path, blob);
    ByteReader r(blob);
    auto loaded = deserialize(&r);
    EXPECT_TRUE(loaded.ok());
    WriteFile(query_path, EncodeMatrix(loaded->Query()));
    *regenerated = true;
    return;
  }

  const std::vector<uint8_t> want_blob = ReadFile(blob_path);
  ASSERT_EQ(blob.size(), want_blob.size())
      << stem << ": serialized size changed — format drift";
  EXPECT_EQ(std::memcmp(blob.data(), want_blob.data(), blob.size()), 0)
      << stem << ": serialized bytes changed — format drift";

  // Load the COMMITTED blob (not the fresh one): this is what a sketch
  // checkpointed by an older build looks like to the current code.
  ByteReader r(want_blob);
  auto loaded = deserialize(&r);
  ASSERT_TRUE(loaded.ok()) << stem << ": committed blob no longer loads";
  const std::vector<uint8_t> got_query = EncodeMatrix(loaded->Query());
  const std::vector<uint8_t> want_query = ReadFile(query_path);
  ASSERT_EQ(got_query.size(), want_query.size()) << stem;
  EXPECT_EQ(
      std::memcmp(got_query.data(), want_query.data(), got_query.size()), 0)
      << stem << ": deserialize-then-query is no longer byte-stable";
}

TEST(SerializationGoldenTest, LmFdBlobAndQueryAreByteStable) {
  const size_t d = 8;
  LmFd::Options opt;
  opt.ell = 6;
  opt.blocks_per_level = 3;
  opt.block_capacity = 6.0 * static_cast<double>(d);
  LmFd lm(d, WindowSpec::Sequence(100), opt);
  Ingest(&lm, 250, d, 41);
  bool regenerated = false;
  CheckGolden(&lm, "golden_lm_fd",
              [](ByteReader* r) { return LmFd::Deserialize(r); },
              &regenerated);
  if (regenerated) GTEST_SKIP() << "fixtures regenerated";
}

TEST(SerializationGoldenTest, DiFdBlobAndQueryAreByteStable) {
  const size_t d = 8;
  DiFd::Options opt;
  opt.levels = 4;
  opt.window_size = 100;
  opt.max_norm_sq = 16.0 * static_cast<double>(d);
  opt.ell_top = 12;
  DiFd di(d, opt);
  Ingest(&di, 250, d, 42);
  bool regenerated = false;
  CheckGolden(&di, "golden_di_fd",
              [](ByteReader* r) { return DiFd::Deserialize(r); },
              &regenerated);
  if (regenerated) GTEST_SKIP() << "fixtures regenerated";
}

TEST(SerializationGoldenTest, DsFdBlobAndQueryAreByteStable) {
  const size_t d = 8;
  DsFd::Options opt;
  opt.ell = 6;
  opt.snapshots_per_window = 4;
  DsFd ds(d, WindowSpec::Sequence(100), opt);
  Ingest(&ds, 250, d, 44);
  bool regenerated = false;
  CheckGolden(&ds, "golden_ds_fd",
              [](ByteReader* r) { return DsFd::Deserialize(r); },
              &regenerated);
  if (regenerated) GTEST_SKIP() << "fixtures regenerated";
}

TEST(SerializationGoldenTest, SworBlobAndQueryAreByteStable) {
  const size_t d = 8;
  SworSketch::Options opt;
  opt.ell = 10;
  opt.seed = 43;
  SworSketch swor(d, WindowSpec::Sequence(100), opt);
  Ingest(&swor, 250, d, 43);
  bool regenerated = false;
  CheckGolden(&swor, "golden_swor",
              [](ByteReader* r) { return SworSketch::Deserialize(r); },
              &regenerated);
  if (regenerated) GTEST_SKIP() << "fixtures regenerated";
}

// The AMM v2 wire tags (AME1 for the exact dual-buffer backend, AMS1 for
// the stacked wrappers — whose payload nests the underlying backend's own
// tagged blob) are pinned the same way: the committed bytes are what a
// checkpoint written by this PR looks like forever.
TEST(SerializationGoldenTest, AmmExactBlobAndQueryAreByteStable) {
  const size_t da = 3, db = 5;
  AmmExact amm(da, db, WindowSpec::Sequence(40));
  Ingest(&amm, 120, da + db, 45);
  bool regenerated = false;
  CheckGolden(&amm, "golden_amm_exact",
              [](ByteReader* r) { return AmmExact::Deserialize(r); },
              &regenerated);
  if (regenerated) GTEST_SKIP() << "fixtures regenerated";
}

TEST(SerializationGoldenTest, AmmCoFdBlobAndQueryAreByteStable) {
  const size_t da = 3, db = 5, d = da + db;
  SketchConfig config;
  config.algorithm = "amm-co-fd";
  config.ell = 6;
  config.ds_snapshots_per_window = 4;
  config.amm_dim_a = da;
  auto made = MakeSlidingWindowSketch(d, WindowSpec::Sequence(100), config);
  ASSERT_TRUE(made.ok());
  auto* amm = dynamic_cast<AmmStacked*>(made->get());
  ASSERT_NE(amm, nullptr);
  Ingest(amm, 250, d, 46);
  bool regenerated = false;
  CheckGolden(amm, "golden_amm_co_fd",
              [](ByteReader* r) { return AmmStacked::Deserialize(r); },
              &regenerated);
  if (regenerated) GTEST_SKIP() << "fixtures regenerated";
}

TEST(SerializationGoldenTest, AmmLmFdBlobAndQueryAreByteStable) {
  const size_t da = 4, db = 4, d = da + db;
  SketchConfig config;
  config.algorithm = "amm-lm-fd";
  config.ell = 6;
  config.blocks_per_level = 3;
  config.lm_block_capacity = 6.0 * static_cast<double>(d);
  config.amm_dim_a = da;
  auto made = MakeSlidingWindowSketch(d, WindowSpec::Sequence(100), config);
  ASSERT_TRUE(made.ok());
  auto* amm = dynamic_cast<AmmStacked*>(made->get());
  ASSERT_NE(amm, nullptr);
  Ingest(amm, 250, d, 47);
  bool regenerated = false;
  CheckGolden(amm, "golden_amm_lm_fd",
              [](ByteReader* r) { return AmmStacked::Deserialize(r); },
              &regenerated);
  if (regenerated) GTEST_SKIP() << "fixtures regenerated";
}

TEST(SerializationGoldenTest, LoadStartsWithColdCachesAndCountsReload) {
  // The query/merge caches are runtime state and must not ride along in
  // the payload: the first Query() on a loaded sketch takes the cold path
  // (a query_cache_miss), and the load itself is visible as a reload in
  // the metrics. The bytes it produces still match the warm pre-serialize
  // result (pinned bitwise by the fixtures above).
  if (RegenMode()) GTEST_SKIP() << "regen run";
  const size_t d = 8;
  LmFd::Options opt;
  opt.ell = 6;
  opt.blocks_per_level = 3;
  opt.block_capacity = 6.0 * static_cast<double>(d);
  LmFd lm(d, WindowSpec::Sequence(100), opt);
  Ingest(&lm, 250, d, 41);
  (void)lm.Query();  // Warm the live sketch's cache.

  auto& reg = MetricsRegistry::Global();
  const uint64_t reloads0 = reg.GetCounter("lm_fd.reloads")->Value();
  ByteWriter w;
  lm.Serialize(&w);
  ByteReader r(w.bytes());
  auto loaded = LmFd::Deserialize(&r);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(reg.GetCounter("lm_fd.reloads")->Value(), reloads0 + 1);

  const uint64_t misses0 = reg.GetCounter("lm_fd.query_cache_misses")->Value();
  const uint64_t hits0 = reg.GetCounter("lm_fd.query_cache_hits")->Value();
  const Matrix q = loaded->Query();
  EXPECT_EQ(reg.GetCounter("lm_fd.query_cache_misses")->Value(), misses0 + 1)
      << "first post-load query must be cold";
  EXPECT_EQ(reg.GetCounter("lm_fd.query_cache_hits")->Value(), hits0);
  EXPECT_EQ(q.MaxAbsDiff(lm.Query()), 0.0);
}

}  // namespace
}  // namespace swsketch
