// Round-trip tests for checkpoint/resume serialization across the stack:
// after save + load, sketches must produce identical approximations and
// continue identically on further updates.
#include <vector>

#include <gtest/gtest.h>

#include "core/dyadic_interval.h"
#include "core/logarithmic_method.h"
#include "core/swor.h"
#include "core/swr.h"
#include "linalg/matrix.h"
#include "sketch/frequent_directions.h"
#include "sketch/hash_sketch.h"
#include "sketch/random_projection.h"
#include "util/exponential_histogram.h"
#include "util/random.h"
#include "util/serialize.h"

namespace swsketch {
namespace {

std::vector<double> RandomRow(Rng* rng, size_t d) {
  std::vector<double> r(d);
  for (auto& v : r) v = rng->Gaussian();
  return r;
}

TEST(SerializeTest, ByteRoundTripPrimitives) {
  ByteWriter w;
  w.Put<uint32_t>(42);
  w.Put(3.5);
  w.PutString("hello");
  w.PutVector(std::vector<double>{1.0, 2.0});
  ByteReader r(w.bytes());
  uint32_t i = 0;
  double d = 0.0;
  std::string s;
  std::vector<double> v;
  EXPECT_TRUE(r.Get(&i));
  EXPECT_TRUE(r.Get(&d));
  EXPECT_TRUE(r.GetString(&s));
  EXPECT_TRUE(r.GetVector(&v));
  EXPECT_EQ(i, 42u);
  EXPECT_EQ(d, 3.5);
  EXPECT_EQ(s, "hello");
  EXPECT_EQ(v, (std::vector<double>{1.0, 2.0}));
  EXPECT_TRUE(r.AtEnd());
}

TEST(SerializeTest, TruncatedPayloadFailsCleanly) {
  ByteWriter w;
  w.Put<uint64_t>(1000);  // Claims a long vector that is not there.
  ByteReader r(w.bytes());
  std::vector<double> v;
  // Interpret the 8 bytes as a vector length: read must fail, not crash.
  ByteReader r2(w.bytes());
  EXPECT_FALSE(r2.GetVector(&v));
  EXPECT_FALSE(r2.ok());
  (void)r;
}

TEST(SerializeTest, MatrixRoundTrip) {
  Matrix m{{1, 2, 3}, {4, 5, 6}};
  ByteWriter w;
  m.Serialize(&w);
  ByteReader r(w.bytes());
  auto loaded = Matrix::Deserialize(&r);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->ApproxEquals(m, 0.0));
}

TEST(SerializeTest, RngRoundTripContinuesIdentically) {
  Rng a(7);
  for (int i = 0; i < 13; ++i) a.Next();
  a.Gaussian();  // Leaves a cached value.
  ByteWriter w;
  a.Serialize(&w);
  ByteReader r(w.bytes());
  Rng b(99);
  ASSERT_TRUE(b.Deserialize(&r));
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
  EXPECT_EQ(a.Gaussian(), b.Gaussian());
}

TEST(SerializeTest, ExponentialHistogramRoundTrip) {
  ExponentialHistogram eh(0.1);
  Rng rng(1);
  for (int i = 0; i < 500; ++i) eh.Add(1.0 + rng.Uniform01(), i);
  ByteWriter w;
  eh.Serialize(&w);
  ByteReader r(w.bytes());
  ExponentialHistogram loaded(0.5);
  ASSERT_TRUE(loaded.Deserialize(&r));
  for (double start : {0.0, 100.0, 499.0}) {
    EXPECT_EQ(loaded.Estimate(start), eh.Estimate(start));
  }
  EXPECT_EQ(loaded.NumBuckets(), eh.NumBuckets());
}

TEST(SerializeTest, FrequentDirectionsRoundTrip) {
  Rng rng(2);
  FrequentDirections fd(12, 8);
  for (int i = 0; i < 100; ++i) fd.Append(RandomRow(&rng, 12), i);
  ByteWriter w;
  fd.Serialize(&w);
  ByteReader r(w.bytes());
  auto loaded = FrequentDirections::Deserialize(&r);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->Approximation().ApproxEquals(fd.Approximation(), 0.0));
  EXPECT_EQ(loaded->shed_mass(), fd.shed_mass());
  // Continue identically.
  for (int i = 0; i < 50; ++i) {
    auto row = RandomRow(&rng, 12);
    fd.Append(row, i);
    loaded->Append(row, i);
  }
  EXPECT_TRUE(loaded->Approximation().ApproxEquals(fd.Approximation(), 0.0));
}

TEST(SerializeTest, HashSketchRoundTrip) {
  Rng rng(3);
  HashSketch hs(10, 16, 5);
  for (int i = 0; i < 60; ++i) hs.Append(RandomRow(&rng, 10), i);
  ByteWriter w;
  hs.Serialize(&w);
  ByteReader r(w.bytes());
  auto loaded = HashSketch::Deserialize(&r);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->Approximation().ApproxEquals(hs.Approximation(), 0.0));
  // Same hash functions afterwards.
  auto row = RandomRow(&rng, 10);
  hs.Append(row, 1000);
  loaded->Append(row, 1000);
  EXPECT_TRUE(loaded->Approximation().ApproxEquals(hs.Approximation(), 0.0));
}

TEST(SerializeTest, RandomProjectionRoundTripContinuesIdentically) {
  Rng rng(4);
  RandomProjection rp(9, 24, 6);
  for (int i = 0; i < 40; ++i) rp.Append(RandomRow(&rng, 9), i);
  ByteWriter w;
  rp.Serialize(&w);
  ByteReader r(w.bytes());
  auto loaded = RandomProjection::Deserialize(&r);
  ASSERT_TRUE(loaded.ok());
  // The sign generator state is restored: future appends match exactly.
  for (int i = 0; i < 20; ++i) {
    auto row = RandomRow(&rng, 9);
    rp.Append(row, i);
    loaded->Append(row, i);
  }
  EXPECT_TRUE(loaded->Approximation().ApproxEquals(rp.Approximation(), 0.0));
}

TEST(SerializeTest, SwrSketchRoundTrip) {
  Rng rng(5);
  SwrSketch sketch(6, WindowSpec::Sequence(100),
                   SwrSketch::Options{.ell = 8, .seed = 11});
  for (int i = 0; i < 300; ++i) sketch.Update(RandomRow(&rng, 6), i);
  ByteWriter w;
  sketch.Serialize(&w);
  ByteReader r(w.bytes());
  auto loaded = SwrSketch::Deserialize(&r);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->RowsStored(), sketch.RowsStored());
  EXPECT_TRUE(loaded->Query().ApproxEquals(sketch.Query(), 1e-12));
  // Continue identically (same RNG state).
  for (int i = 300; i < 400; ++i) {
    auto row = RandomRow(&rng, 6);
    sketch.Update(row, i);
    loaded->Update(row, i);
  }
  EXPECT_TRUE(loaded->Query().ApproxEquals(sketch.Query(), 1e-12));
}

TEST(SerializeTest, SworSketchRoundTrip) {
  Rng rng(6);
  SworSketch sketch(5, WindowSpec::Time(50.0),
                    SworSketch::Options{.ell = 6, .seed = 13});
  double t = 0.0;
  for (int i = 0; i < 200; ++i) {
    t += rng.Exponential(1.0);
    sketch.Update(RandomRow(&rng, 5), t);
  }
  ByteWriter w;
  sketch.Serialize(&w);
  ByteReader r(w.bytes());
  auto loaded = SworSketch::Deserialize(&r);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->name(), "SWOR");
  EXPECT_TRUE(loaded->Query().ApproxEquals(sketch.Query(), 1e-12));
  for (int i = 0; i < 100; ++i) {
    t += rng.Exponential(1.0);
    auto row = RandomRow(&rng, 5);
    sketch.Update(row, t);
    loaded->Update(row, t);
  }
  EXPECT_TRUE(loaded->Query().ApproxEquals(sketch.Query(), 1e-12));
}

TEST(SerializeTest, LmFdRoundTrip) {
  Rng rng(7);
  LmFd sketch(8, WindowSpec::Sequence(200),
              LmFd::Options{.ell = 12, .blocks_per_level = 4});
  for (int i = 0; i < 900; ++i) sketch.Update(RandomRow(&rng, 8), i);
  ByteWriter w;
  sketch.Serialize(&w);
  ByteReader r(w.bytes());
  auto loaded = LmFd::Deserialize(&r);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->RowsStored(), sketch.RowsStored());
  EXPECT_EQ(loaded->NumLevels(), sketch.NumLevels());
  EXPECT_TRUE(loaded->Query().ApproxEquals(sketch.Query(), 1e-12));
  for (int i = 900; i < 1200; ++i) {
    auto row = RandomRow(&rng, 8);
    sketch.Update(row, i);
    loaded->Update(row, i);
  }
  EXPECT_TRUE(loaded->Query().ApproxEquals(sketch.Query(), 1e-12));
  loaded->CheckInvariants();
}

TEST(SerializeTest, LmHashRoundTrip) {
  Rng rng(8);
  LmHash sketch(6, WindowSpec::Sequence(150),
                LmHash::Options{.ell = 32, .blocks_per_level = 4, .seed = 3});
  for (int i = 0; i < 700; ++i) sketch.Update(RandomRow(&rng, 6), i);
  ByteWriter w;
  sketch.Serialize(&w);
  ByteReader r(w.bytes());
  auto loaded = LmHash::Deserialize(&r);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->Query().ApproxEquals(sketch.Query(), 1e-12));
}

TEST(SerializeTest, DiFdRoundTrip) {
  Rng rng(9);
  DiFd sketch(7, DiFd::Options{.levels = 4, .window_size = 128,
                               .max_norm_sq = 20.0, .ell_top = 12});
  for (int i = 0; i < 600; ++i) sketch.Update(RandomRow(&rng, 7), i);
  ByteWriter w;
  sketch.Serialize(&w);
  ByteReader r(w.bytes());
  auto loaded = DiFd::Deserialize(&r);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->RowsStored(), sketch.RowsStored());
  EXPECT_TRUE(loaded->Query().ApproxEquals(sketch.Query(), 1e-12));
  for (int i = 600; i < 900; ++i) {
    auto row = RandomRow(&rng, 7);
    sketch.Update(row, i);
    loaded->Update(row, i);
  }
  EXPECT_TRUE(loaded->Query().ApproxEquals(sketch.Query(), 1e-12));
  loaded->CheckInvariants();
}

TEST(SerializeTest, CorruptHeadersRejected) {
  ByteWriter w;
  WriteHeader(&w, 0xDEADBEEF, 1);
  {
    ByteReader r(w.bytes());
    EXPECT_FALSE(FrequentDirections::Deserialize(&r).ok());
  }
  {
    ByteReader r(w.bytes());
    EXPECT_FALSE(LmFd::Deserialize(&r).ok());
  }
  {
    ByteReader r(w.bytes());
    EXPECT_FALSE(SwrSketch::Deserialize(&r).ok());
  }
  {
    ByteReader r(w.bytes());
    EXPECT_FALSE(DiFd::Deserialize(&r).ok());
  }
}

TEST(SerializeTest, TruncatedSketchPayloadRejected) {
  Rng rng(10);
  FrequentDirections fd(5, 4);
  for (int i = 0; i < 20; ++i) fd.Append(RandomRow(&rng, 5), i);
  ByteWriter w;
  fd.Serialize(&w);
  auto bytes = w.TakeBytes();
  bytes.resize(bytes.size() / 2);
  ByteReader r(bytes);
  EXPECT_FALSE(FrequentDirections::Deserialize(&r).ok());
}

}  // namespace
}  // namespace swsketch
