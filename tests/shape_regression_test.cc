// Miniature shape-regression tests: the paper's qualitative experimental
// findings, asserted at test scale so CI catches regressions that would
// silently change the reproduced figures.
#include <memory>

#include <gtest/gtest.h>

#include "core/factory.h"
#include "data/pamap.h"
#include "eval/cov_err.h"
#include "sketch/priority_sampler.h"
#include "util/random.h"

namespace swsketch {
namespace {

// Figure 6's phenomenon, as a regression test: on a window with few huge
// rows and many tiny rows, SWOR's error increases as the sample size
// passes the heavy-row count; SWR's decreases.
TEST(ShapeRegression, Fig6SworSkewPathology) {
  PamapStream stream(PamapStream::Options{.rows = 30000, .window = 3000,
                                          .seed = 11});
  const size_t begin = stream.skewed_window_begin();
  Matrix window(0, stream.dim());
  size_t idx = 0;
  while (auto row = stream.Next()) {
    if (idx >= begin && idx < begin + 3000) window.AppendRow(row->view());
    ++idx;
  }
  const Matrix gram = window.Gram();
  const double frob_sq = window.FrobeniusNormSq();

  Rng rng(5);
  auto mean_err = [&](size_t ell, bool with_replacement) {
    double sum = 0.0;
    for (int rep = 0; rep < 8; ++rep) {
      sum += CovarianceError(
          gram, frob_sq,
          SampleRowsOffline(window, ell, with_replacement, &rng));
    }
    return sum / 8.0;
  };
  // SWR: monotone-ish improvement.
  EXPECT_LT(mean_err(80, true), mean_err(10, true));
  // SWOR: worse at 80 than at its small-sample sweet spot.
  EXPECT_GT(mean_err(80, false), 1.5 * mean_err(15, false));
  // And SWR beats SWOR at large sample sizes on this window.
  EXPECT_LT(mean_err(80, true), mean_err(80, false));
}

// Figures 3/7: LM-FD achieves lower error than the samplers at the same
// ell on generic data (already covered for sequence windows in
// integration tests; this pins the time-window variant).
TEST(ShapeRegression, LmFdBeatsSamplersOnTimeWindows) {
  const size_t d = 16;
  const double delta = 200.0;
  std::vector<std::unique_ptr<SlidingWindowSketch>> sketches;
  for (const char* algo : {"lm-fd", "swr", "swor"}) {
    SketchConfig config;
    config.algorithm = algo;
    config.ell = 16;
    auto r = MakeSlidingWindowSketch(d, WindowSpec::Time(delta), config);
    ASSERT_TRUE(r.ok());
    sketches.push_back(r.take());
  }
  Rng rng(7);
  double t = 0.0;
  Matrix recent(0, d);
  std::vector<Row> all;
  for (int i = 0; i < 3000; ++i) {
    t += rng.Exponential(2.0);
    std::vector<double> row(d);
    for (auto& v : row) v = rng.Gaussian();
    for (auto& s : sketches) s->Update(row, t);
    all.emplace_back(row, t);
  }
  Matrix window(0, d);
  for (const Row& r : all) {
    if (r.ts >= t - delta) window.AppendRow(r.view());
  }
  const Matrix gram = window.Gram();
  const double frob_sq = window.FrobeniusNormSq();
  const double lm = CovarianceError(gram, frob_sq, sketches[0]->Query());
  const double swr = CovarianceError(gram, frob_sq, sketches[1]->Query());
  const double swor = CovarianceError(gram, frob_sq, sketches[2]->Query());
  EXPECT_LT(lm, swr);
  EXPECT_LT(lm, swor);
}

// Theorem 4.1's operational shape: exact is linear in N, sketches flat.
TEST(ShapeRegression, ExactLinearSketchFlat) {
  Rng rng(9);
  size_t exact_small = 0, exact_big = 0, lm_small = 0, lm_big = 0;
  for (uint64_t n : {200u, 1600u}) {
    SketchConfig exact_cfg, lm_cfg;
    exact_cfg.algorithm = "exact";
    lm_cfg.algorithm = "lm-fd";
    lm_cfg.ell = 8;
    auto exact = MakeSlidingWindowSketch(4, WindowSpec::Sequence(n), exact_cfg);
    auto lm = MakeSlidingWindowSketch(4, WindowSpec::Sequence(n), lm_cfg);
    for (uint64_t i = 0; i < 2 * n; ++i) {
      std::vector<double> row(4);
      for (auto& v : row) v = rng.Gaussian();
      (*exact)->Update(row, static_cast<double>(i));
      (*lm)->Update(row, static_cast<double>(i));
    }
    (n == 200 ? exact_small : exact_big) = (*exact)->RowsStored();
    (n == 200 ? lm_small : lm_big) = (*lm)->RowsStored();
  }
  EXPECT_EQ(exact_small, 200u);
  EXPECT_EQ(exact_big, 1600u);  // Linear: 8x the window, 8x the rows.
  EXPECT_LT(lm_big, 3 * lm_small + 64);  // Near-flat.
}

}  // namespace
}  // namespace swsketch
