// Tests for sharded parallel ingest (DESIGN.md section 8): the
// sharded == serial bit-identity contract for deterministic backends,
// round-robin window alignment, tolerance parity for randomized backends,
// and concurrent ingest + query (run under the TSan preset).
#include "distributed/sharded_sketch.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <memory>
#include <set>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/concurrent_sketch.h"
#include "core/factory.h"
#include "core/merge_reduce.h"
#include "eval/cov_err.h"
#include "stream/window_buffer.h"
#include "util/random.h"

namespace swsketch {
namespace {

// Rows scaled to ~unit squared norm so DI's default max_norm_sq works.
Matrix GaussianRows(uint64_t seed, size_t n, size_t d) {
  Rng rng(seed);
  Matrix m(0, d);
  m.ReserveRows(n);
  std::vector<double> row(d);
  const double scale = 1.0 / std::sqrt(static_cast<double>(d));
  for (size_t i = 0; i < n; ++i) {
    for (auto& v : row) v = scale * rng.Gaussian();
    m.AppendRow(row);
  }
  return m;
}

std::vector<double> SequenceTs(size_t n) {
  std::vector<double> ts(n);
  for (size_t i = 0; i < n; ++i) ts[i] = static_cast<double>(i);
  return ts;
}

SketchConfig ConfigFor(const std::string& algorithm, size_t ell) {
  SketchConfig config;
  config.algorithm = algorithm;
  config.ell = ell;
  config.levels = 5;
  config.max_norm_sq = 2.0;
  config.seed = 11;
  return config;
}

std::unique_ptr<ShardedSketch> MakeSharded(const SketchConfig& config,
                                           size_t dim, WindowSpec window,
                                           size_t shards, bool parallel,
                                           size_t block_rows = 64) {
  ShardedSketch::Options options;
  options.shards = shards;
  options.parallel = parallel;
  options.block_rows = block_rows;
  auto r = ShardedSketch::Make(dim, window, config, options);
  EXPECT_TRUE(r.ok()) << r.status().message();
  return r.ok() ? r.take() : nullptr;
}

// The core contract: the parallel writer pipeline answers byte-for-byte
// what the inline serial execution of the same sharded pipeline answers,
// at every interleaved query point, for every deterministic backend.
TEST(ShardedSketchTest, ParallelMatchesSerialBitExact_SequenceWindow) {
  const size_t d = 12, n = 1200;
  const Matrix rows = GaussianRows(21, n, d);
  const std::vector<double> ts = SequenceTs(n);
  for (const std::string algo : {"lm-fd", "di-fd", "lm-hash", "di-hash"}) {
    SCOPED_TRACE(algo);
    const SketchConfig config = ConfigFor(algo, 8);
    auto parallel =
        MakeSharded(config, d, WindowSpec::Sequence(300), 3, true);
    auto serial =
        MakeSharded(config, d, WindowSpec::Sequence(300), 3, false);
    ASSERT_TRUE(parallel && serial);
    const size_t chunk = 97;  // Deliberately misaligned with block_rows.
    for (size_t begin = 0; begin < n; begin += chunk) {
      const size_t end = std::min(n, begin + chunk);
      Matrix block(0, d);
      for (size_t i = begin; i < end; ++i) block.AppendRow(rows.Row(i));
      const std::span<const double> bts(ts.data() + begin, end - begin);
      parallel->UpdateBatch(block, bts);
      serial->UpdateBatch(block, bts);
      const Matrix bp = parallel->Query();
      const Matrix bs = serial->Query();
      ASSERT_EQ(bp.rows(), bs.rows());
      EXPECT_TRUE(bp.ApproxEquals(bs, 0.0));
    }
    parallel->Flush();
    serial->Flush();
    EXPECT_EQ(parallel->RowsStored(), serial->RowsStored());
  }
}

TEST(ShardedSketchTest, ParallelMatchesSerialBitExact_TimeWindow) {
  const size_t d = 10, n = 1000;
  const Matrix rows = GaussianRows(22, n, d);
  std::vector<double> ts(n);
  for (size_t i = 0; i < n; ++i) ts[i] = 0.1 * static_cast<double>(i);
  for (const std::string algo : {"lm-fd", "lm-hash"}) {
    SCOPED_TRACE(algo);
    const SketchConfig config = ConfigFor(algo, 8);
    const WindowSpec window = WindowSpec::Time(20.0);
    auto parallel = MakeSharded(config, d, window, 4, true);
    auto serial = MakeSharded(config, d, window, 4, false);
    ASSERT_TRUE(parallel && serial);
    for (size_t i = 0; i < n; ++i) {
      parallel->Update(rows.Row(i), ts[i]);
      serial->Update(rows.Row(i), ts[i]);
      if ((i + 1) % 250 == 0) {
        EXPECT_TRUE(parallel->Query().ApproxEquals(serial->Query(), 0.0));
      }
    }
    // Slide the window past every ingested row: expiry must stay aligned.
    const double far = ts.back() + 1000.0;
    parallel->AdvanceTo(far);
    serial->AdvanceTo(far);
    const Matrix bp = parallel->Query();
    EXPECT_EQ(bp.rows(), 0u);
    EXPECT_TRUE(bp.ApproxEquals(serial->Query(), 0.0));
    // Ingest resumes after total expiry.
    parallel->Update(rows.Row(0), far + 1.0);
    serial->Update(rows.Row(0), far + 1.0);
    EXPECT_TRUE(parallel->Query().ApproxEquals(serial->Query(), 0.0));
  }
}

// With one shard the pipeline degenerates to the plain sketch: shard 0
// keeps the base seed and the single-leaf reduce is the identity, so the
// bytes must match the unsharded factory sketch — randomized backends
// included.
TEST(ShardedSketchTest, SingleShardMatchesPlainSketch) {
  const size_t d = 9, n = 700;
  const Matrix rows = GaussianRows(23, n, d);
  const std::vector<double> ts = SequenceTs(n);
  for (const std::string algo :
       {"lm-fd", "ds-fd", "lm-hash", "lm-rp", "swr"}) {
    SCOPED_TRACE(algo);
    const SketchConfig config = ConfigFor(algo, 8);
    const WindowSpec window = WindowSpec::Sequence(250);
    auto sharded = MakeSharded(config, d, window, 1, true);
    auto plain = MakeSlidingWindowSketch(d, window, config);
    ASSERT_TRUE(sharded && plain.ok());
    for (size_t i = 0; i < n; ++i) {
      sharded->Update(rows.Row(i), ts[i]);
      plain.value()->Update(rows.Row(i), ts[i]);
      if ((i + 1) % 200 == 0) {
        EXPECT_TRUE(
            sharded->Query().ApproxEquals(plain.value()->Query(), 0.0));
      }
    }
    sharded->Flush();
    EXPECT_EQ(sharded->RowsStored(), plain.value()->RowsStored());
    EXPECT_TRUE(sharded->Query().ApproxEquals(plain.value()->Query(), 0.0));
  }
}

// Round-robin with global timestamps makes the union of shard windows the
// logical window *exactly*: an exact backend sharded three ways must have
// zero covariance error against the exact window, before and after slides.
TEST(ShardedSketchTest, RoundRobinWindowAlignmentIsExact) {
  const size_t d = 8, n = 900;
  const uint64_t w = 200;
  const Matrix rows = GaussianRows(24, n, d);
  auto sharded = MakeSharded(ConfigFor("exact", 8), d,
                             WindowSpec::Sequence(w), 3, true);
  ASSERT_TRUE(sharded);
  WindowBuffer truth(WindowSpec::Sequence(w));
  for (size_t i = 0; i < n; ++i) {
    const double ts = static_cast<double>(i);
    sharded->Update(rows.Row(i), ts);
    truth.Add(Row(std::vector<double>(rows.Row(i).begin(),
                                      rows.Row(i).end()),
                  ts));
    if ((i + 1) % 150 == 0) {
      const Matrix b = sharded->Query();
      EXPECT_EQ(b.rows(), truth.size());
      const double err =
          CovarianceError(truth.GramMatrix(d), truth.FrobeniusNormSq(), b);
      EXPECT_LE(err, 1e-12);
    }
  }
}

// Randomized backends cannot be bit-compared across shard counts (seeds
// differ per shard by design); they must still land in the same accuracy
// regime as their unsharded counterpart.
TEST(ShardedSketchTest, RandomizedBackendsToleranceParity) {
  const size_t d = 16, n = 1500;
  const uint64_t w = 400;
  const size_t ell = 48;
  const Matrix rows = GaussianRows(25, n, d);
  for (const std::string algo : {"lm-rp", "swr"}) {
    SCOPED_TRACE(algo);
    const SketchConfig config = ConfigFor(algo, ell);
    auto sharded =
        MakeSharded(config, d, WindowSpec::Sequence(w), 3, true);
    auto plain = MakeSlidingWindowSketch(d, WindowSpec::Sequence(w), config);
    ASSERT_TRUE(sharded && plain.ok());
    WindowBuffer truth(WindowSpec::Sequence(w));
    for (size_t i = 0; i < n; ++i) {
      const double ts = static_cast<double>(i);
      sharded->Update(rows.Row(i), ts);
      plain.value()->Update(rows.Row(i), ts);
      truth.Add(Row(std::vector<double>(rows.Row(i).begin(),
                                        rows.Row(i).end()),
                    ts));
    }
    const Matrix gram = truth.GramMatrix(d);
    const double frob = truth.FrobeniusNormSq();
    const double err_sharded =
        CovarianceError(gram, frob, sharded->Query());
    const double err_plain =
        CovarianceError(gram, frob, plain.value()->Query());
    EXPECT_LT(err_sharded, 0.75);
    EXPECT_LT(err_plain, 0.75);
  }
}

TEST(ShardedSketchTest, ShardSeedScheme) {
  EXPECT_EQ(ShardedSketch::ShardSeed(42, 0), 42u);
  std::set<uint64_t> seeds;
  for (size_t s = 0; s < 16; ++s) seeds.insert(ShardedSketch::ShardSeed(42, s));
  EXPECT_EQ(seeds.size(), 16u);  // No collisions across shards.
}

TEST(ShardedSketchTest, MakeRejectsBadConfig) {
  SketchConfig config = ConfigFor("no-such-algorithm", 8);
  EXPECT_FALSE(
      ShardedSketch::Make(4, WindowSpec::Sequence(10), config, {}).ok());
  ShardedSketch::Options zero;
  zero.shards = 0;
  EXPECT_FALSE(ShardedSketch::Make(4, WindowSpec::Sequence(10),
                                   ConfigFor("lm-fd", 8), zero)
                   .ok());
}

TEST(ShardedSketchTest, StateVersionTracksMutationsNotQueries) {
  auto sharded = MakeSharded(ConfigFor("lm-fd", 8), 6,
                             WindowSpec::Sequence(100), 2, true);
  ASSERT_TRUE(sharded);
  const uint64_t v0 = sharded->StateVersion();
  const Matrix rows = GaussianRows(26, 10, 6);
  const std::vector<double> ts = SequenceTs(10);
  sharded->UpdateBatch(rows, ts);
  const uint64_t v1 = sharded->StateVersion();
  EXPECT_GT(v1, v0);
  (void)sharded->Query();
  sharded->Flush();
  EXPECT_EQ(sharded->StateVersion(), v1);  // Queries/flushes do not mutate.
  sharded->AdvanceTo(50.0);
  EXPECT_GT(sharded->StateVersion(), v1);
}

// LM/DI StateVersion plumbing backs the sharded query cache; pin the
// "moves on every mutation" contract on the frameworks themselves.
TEST(ShardedSketchTest, FrameworkStateVersionMovesPerMutation) {
  for (const std::string algo : {"lm-fd", "di-fd"}) {
    SCOPED_TRACE(algo);
    auto sketch = MakeSlidingWindowSketch(6, WindowSpec::Sequence(50),
                                          ConfigFor(algo, 8));
    ASSERT_TRUE(sketch.ok());
    const uint64_t v0 = sketch.value()->StateVersion();
    const Matrix rows = GaussianRows(27, 3, 6);
    sketch.value()->Update(rows.Row(0), 0.0);
    const uint64_t v1 = sketch.value()->StateVersion();
    EXPECT_GT(v1, v0);
    (void)sketch.value()->Query();
    EXPECT_EQ(sketch.value()->StateVersion(), v1);
    sketch.value()->AdvanceTo(10.0);
    EXPECT_GT(sketch.value()->StateVersion(), v1);
  }
}

// Interleaved ingest and queries from the coordinator thread while S
// writers run: the TSan preset validates the queue, quiesce and publish
// protocols.
TEST(ShardedSketchTest, ConcurrentIngestAndQuery) {
  const size_t d = 10, n = 6000;
  const Matrix rows = GaussianRows(28, n, d);
  auto sharded = MakeSharded(ConfigFor("lm-fd", 8), d,
                             WindowSpec::Sequence(500), 3, true,
                             /*block_rows=*/32);
  ASSERT_TRUE(sharded);
  size_t queries = 0;
  for (size_t i = 0; i < n; ++i) {
    sharded->Update(rows.Row(i), static_cast<double>(i));
    if ((i + 1) % 500 == 0) {
      const Matrix b = sharded->Query();
      EXPECT_LE(b.rows(), 8u);
      ++queries;
    }
  }
  EXPECT_EQ(queries, n / 500);
  sharded->Flush();
  EXPECT_GT(sharded->RowsStored(), 0u);
}

// Multi-threaded callers go through ConcurrentSketch: one writer ingests
// while readers query, on top of the sharded pipeline's own S writers.
TEST(ShardedSketchTest, ConcurrentSketchOverShardedPipeline) {
  const size_t d = 8, n = 3000;
  const Matrix rows = GaussianRows(29, n, d);
  ShardedSketch::Options options;
  options.shards = 2;
  options.block_rows = 32;
  auto inner = ShardedSketch::Make(d, WindowSpec::Sequence(400),
                                   ConfigFor("lm-fd", 8), options);
  ASSERT_TRUE(inner.ok());
  ConcurrentSketch sketch(inner.take(), ConcurrentSketch::Mode::kMutex);

  std::atomic<bool> done{false};
  std::thread writer([&] {
    for (size_t i = 0; i < n; ++i) {
      sketch.Update(rows.Row(i), static_cast<double>(i));
    }
    done.store(true);
  });
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      while (!done.load()) {
        const Matrix b = sketch.Query();
        EXPECT_LE(b.rows(), 8u);
        (void)sketch.RowsStored();
      }
    });
  }
  writer.join();
  for (auto& t : readers) t.join();
  sketch.Flush();
  EXPECT_TRUE(sketch.Query().rows() <= 8u);
}

// merge_reduce unit coverage: spec mapping and pair combiners.
TEST(MergeReduceTest, SpecForAlgorithms) {
  EXPECT_EQ(ReduceSpecFor("lm-fd", 16).kind, QueryReduceKind::kFdMerge);
  EXPECT_EQ(ReduceSpecFor("lm-fd", 16).reduce_ell, 16u);
  EXPECT_EQ(ReduceSpecFor("di-fd", 16).reduce_ell, 32u);
  EXPECT_EQ(ReduceSpecFor("lm-hash", 16).kind, QueryReduceKind::kSum);
  EXPECT_EQ(ReduceSpecFor("lm-rp", 16).kind, QueryReduceKind::kSum);
  EXPECT_EQ(ReduceSpecFor("di-hash", 16).kind, QueryReduceKind::kStack);
  EXPECT_EQ(ReduceSpecFor("exact", 16).kind, QueryReduceKind::kStack);
}

TEST(MergeReduceTest, CombinersAndEmptyOperands) {
  const size_t d = 3;
  Matrix a{{1.0, 2.0, 3.0}};
  Matrix b{{4.0, 5.0, 6.0}};
  const Matrix empty(0, d);

  const QueryReduceSpec stack{QueryReduceKind::kStack, 0};
  EXPECT_EQ(CombineQueryPair(stack, d, a, b).rows(), 2u);
  EXPECT_TRUE(CombineQueryPair(stack, d, empty, b).ApproxEquals(b, 0.0));
  EXPECT_TRUE(CombineQueryPair(stack, d, a, empty).ApproxEquals(a, 0.0));

  const QueryReduceSpec sum{QueryReduceKind::kSum, 0};
  const Matrix s = CombineQueryPair(sum, d, a, b);
  EXPECT_EQ(s.rows(), 1u);
  EXPECT_DOUBLE_EQ(s(0, 0), 5.0);
  EXPECT_DOUBLE_EQ(s(0, 2), 9.0);

  const QueryReduceSpec fd{QueryReduceKind::kFdMerge, 4};
  const Matrix f = CombineQueryPair(fd, d, a, b);
  EXPECT_LE(f.rows(), 4u);
}

TEST(MergeReduceTest, TreeReduceMatchesSerialFold) {
  // Stacking: tree order must equal shard order (left-to-right identity).
  const size_t d = 2;
  std::vector<Matrix> parts;
  Matrix expected(0, d);
  for (size_t i = 0; i < 5; ++i) {
    Matrix m{{static_cast<double>(i), 1.0}};
    parts.push_back(m);
    expected = expected.VStack(m);
  }
  const QueryReduceSpec stack{QueryReduceKind::kStack, 0};
  const Matrix reduced = TreeReduceQueries(stack, d, parts, nullptr);
  EXPECT_TRUE(reduced.ApproxEquals(expected, 0.0));
  EXPECT_EQ(TreeReduceQueries(stack, d, {}, nullptr).rows(), 0u);
}

}  // namespace
}  // namespace swsketch
