// Tests for the exact covariance streaming baseline.
#include "sketch/exact_covariance.h"

#include <gtest/gtest.h>

#include "eval/cov_err.h"
#include "util/random.h"

namespace swsketch {
namespace {

Matrix RandomMatrix(size_t n, size_t d, uint64_t seed) {
  Rng rng(seed);
  Matrix m(n, d);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < d; ++j) m(i, j) = rng.Gaussian();
  }
  return m;
}

TEST(ExactCovarianceTest, CovarianceIsExact) {
  Matrix a = RandomMatrix(40, 7, 1);
  ExactCovariance ec(7);
  for (size_t i = 0; i < a.rows(); ++i) ec.Append(a.Row(i), i);
  EXPECT_TRUE(ec.Covariance().ApproxEquals(a.Gram(), 1e-10));
  EXPECT_NEAR(ec.frobenius_norm_sq(), a.FrobeniusNormSq(), 1e-9);
}

TEST(ExactCovarianceTest, ApproximationHasZeroCovErr) {
  Matrix a = RandomMatrix(60, 5, 2);
  ExactCovariance ec(5);
  for (size_t i = 0; i < a.rows(); ++i) ec.Append(a.Row(i), i);
  EXPECT_NEAR(CovarianceErrorDense(a, ec.Approximation()), 0.0, 1e-8);
}

TEST(ExactCovarianceTest, SpaceIsDSquaredIndependentOfN) {
  ExactCovariance ec(9);
  Matrix a = RandomMatrix(500, 9, 3);
  for (size_t i = 0; i < a.rows(); ++i) ec.Append(a.Row(i), i);
  EXPECT_EQ(ec.RowsStored(), 9u);  // d rows of d entries.
}

}  // namespace
}  // namespace swsketch
