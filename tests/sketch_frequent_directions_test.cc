// Tests for the Frequent Directions streaming sketch, including the
// theoretical error bound and mergeability (Section 6.1).
#include "sketch/frequent_directions.h"

#include <cmath>

#include <gtest/gtest.h>

#include "eval/cov_err.h"
#include "linalg/power_iteration.h"
#include "util/random.h"

namespace swsketch {
namespace {

Matrix RandomMatrix(size_t n, size_t d, uint64_t seed) {
  Rng rng(seed);
  Matrix m(n, d);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < d; ++j) m(i, j) = rng.Gaussian();
  }
  return m;
}

// Absolute covariance error ||A^T A - B^T B||_2.
double AbsCovErr(const Matrix& a, const Matrix& b) {
  Matrix diff = a.Gram();
  for (size_t i = 0; i < b.rows(); ++i) diff.AddOuterProduct(b.Row(i), -1.0);
  return SpectralNormSymmetric(diff);
}

TEST(FrequentDirectionsTest, FewRowsExact) {
  // With fewer rows than ell, no shrink happens: B^T B = A^T A exactly.
  FrequentDirections fd(6, 10);
  Matrix a = RandomMatrix(8, 6, 1);
  fd.AppendMatrix(a);
  EXPECT_EQ(fd.RowsStored(), 8u);
  EXPECT_NEAR(AbsCovErr(a, fd.Approximation()), 0.0, 1e-9);
  EXPECT_EQ(fd.shed_mass(), 0.0);
}

TEST(FrequentDirectionsTest, BoundedRows) {
  FrequentDirections fd(10, 8);
  Matrix a = RandomMatrix(200, 10, 2);
  fd.AppendMatrix(a);
  EXPECT_LE(fd.RowsStored(), 8u);
}

TEST(FrequentDirectionsTest, ErrorWithinShedMass) {
  // Invariant of the FD analysis: ||A^T A - B^T B|| <= shed_mass.
  FrequentDirections fd(12, 10);
  Matrix a = RandomMatrix(300, 12, 3);
  fd.AppendMatrix(a);
  const double err = AbsCovErr(a, fd.Approximation());
  EXPECT_LE(err, fd.shed_mass() * (1.0 + 1e-9) + 1e-9);
}

TEST(FrequentDirectionsTest, ShedMassBound) {
  // shed_mass <= ||A||_F^2 / shrink_rank (each shrink subtracting lambda
  // removes at least shrink_rank * lambda of Frobenius mass).
  const size_t ell = 10;
  FrequentDirections fd(12, ell);
  Matrix a = RandomMatrix(400, 12, 4);
  fd.AppendMatrix(a);
  const double budget =
      a.FrobeniusNormSq() / static_cast<double>(fd.shrink_rank());
  EXPECT_LE(fd.shed_mass(), budget * (1.0 + 1e-9));
}

TEST(FrequentDirectionsTest, CovaErrBoundTwoOverEll) {
  // Paper form: cova-err <= 2 / ell (shrink at ell/2).
  const size_t ell = 16;
  FrequentDirections fd(20, ell);
  Matrix a = RandomMatrix(500, 20, 5);
  fd.AppendMatrix(a);
  const double err = CovarianceErrorDense(a, fd.Approximation());
  EXPECT_LE(err, 2.0 / (ell / 2.0) + 1e-9);
}

TEST(FrequentDirectionsTest, InputMassTracked) {
  FrequentDirections fd(5, 4);
  Matrix a = RandomMatrix(50, 5, 6);
  fd.AppendMatrix(a);
  EXPECT_NEAR(fd.input_mass(), a.FrobeniusNormSq(), 1e-9);
}

TEST(FrequentDirectionsTest, LowRankInputIsExact) {
  // A rank-2 stream sketched with ell >= 5 loses nothing: the shrink
  // subtracts sigma_{ell/2} = 0.
  Rng rng(7);
  Matrix basis = RandomMatrix(2, 15, 8);
  FrequentDirections fd(15, 10);
  Matrix a(0, 15);
  for (int i = 0; i < 100; ++i) {
    std::vector<double> row(15, 0.0);
    const double c0 = rng.Gaussian(), c1 = rng.Gaussian();
    for (size_t j = 0; j < 15; ++j) {
      row[j] = c0 * basis(0, j) + c1 * basis(1, j);
    }
    a.AppendRow(row);
    fd.Append(row, 0);
  }
  EXPECT_NEAR(AbsCovErr(a, fd.Approximation()), 0.0,
              1e-7 * a.FrobeniusNormSq());
  EXPECT_EQ(fd.shed_mass(), 0.0);
}

TEST(FrequentDirectionsTest, MergePreservesSizeBound) {
  FrequentDirections fd1(10, 8), fd2(10, 8);
  fd1.AppendMatrix(RandomMatrix(100, 10, 9));
  fd2.AppendMatrix(RandomMatrix(120, 10, 10));
  fd1.MergeWith(fd2);
  EXPECT_LE(fd1.RowsStored(), 8u);
}

TEST(FrequentDirectionsTest, MergeErrorWithinCombinedBudget) {
  // Mergeability (Section 6.1): the merged sketch approximates [A1; A2]
  // within the summed shed budgets.
  const size_t ell = 12;
  Matrix a1 = RandomMatrix(150, 14, 11);
  Matrix a2 = RandomMatrix(170, 14, 12);
  FrequentDirections fd1(14, ell), fd2(14, ell);
  fd1.AppendMatrix(a1);
  fd2.AppendMatrix(a2);
  fd1.MergeWith(fd2);

  const Matrix stacked = a1.VStack(a2);
  const double err = AbsCovErr(stacked, fd1.Approximation());
  EXPECT_LE(err, fd1.shed_mass() * (1.0 + 1e-9));
  // And the paper-level bound relative to total mass.
  const double rel = err / stacked.FrobeniusNormSq();
  EXPECT_LE(rel, 2.0 / (ell / 2.0));
}

TEST(FrequentDirectionsTest, MergeWithEmpty) {
  FrequentDirections fd1(6, 4), fd2(6, 4);
  Matrix a = RandomMatrix(30, 6, 13);
  fd1.AppendMatrix(a);
  fd1.MergeWith(fd2);  // No-op merge.
  EXPECT_LE(AbsCovErr(a, fd1.Approximation()),
            fd1.shed_mass() + 1e-9);
}

TEST(FrequentDirectionsTest, CustomShrinkRank) {
  FrequentDirections fd(8, FrequentDirections::Options{.ell = 8,
                                                       .shrink_rank = 8});
  EXPECT_EQ(fd.shrink_rank(), 8u);
  Matrix a = RandomMatrix(100, 8, 14);
  fd.AppendMatrix(a);
  EXPECT_LE(fd.RowsStored(), 8u);
}

TEST(FrequentDirectionsTest, BufferFactorPreservesErrorGuarantee) {
  // Amortized shrinking must not weaken the FD analysis: with any
  // buffer_factor the observed error stays within shed_mass, and shed_mass
  // stays within ||A||_F^2 / shrink_rank.
  const size_t ell = 12;
  Matrix a = RandomMatrix(500, 16, 21);
  for (double factor : {1.0, 1.5, 2.0, 4.0}) {
    FrequentDirections fd(
        16, FrequentDirections::Options{.ell = ell, .buffer_factor = factor});
    fd.AppendMatrix(a);
    EXPECT_LE(fd.RowsStored(), fd.buffer_capacity());
    const double err = AbsCovErr(a, fd.Approximation());
    EXPECT_LE(err, fd.shed_mass() * (1.0 + 1e-9) + 1e-9) << factor;
    const double budget =
        a.FrobeniusNormSq() / static_cast<double>(fd.shrink_rank());
    EXPECT_LE(fd.shed_mass(), budget * (1.0 + 1e-9)) << factor;
  }
}

TEST(FrequentDirectionsTest, BufferFactorAmortizesShrinks) {
  const size_t ell = 16;
  Matrix a = RandomMatrix(600, 20, 22);
  FrequentDirections eager(
      20, FrequentDirections::Options{.ell = ell, .buffer_factor = 1.0});
  FrequentDirections buffered(
      20, FrequentDirections::Options{.ell = ell, .buffer_factor = 2.0});
  eager.AppendMatrix(a);
  buffered.AppendMatrix(a);
  EXPECT_EQ(buffered.buffer_capacity(), 2 * ell);
  // Roughly (2*ell - r + 1) / (ell - r + 1) ~ 3x fewer SVDs at factor 2.
  EXPECT_LT(buffered.shrink_count(), eager.shrink_count());
  EXPECT_GT(buffered.shrink_count(), 0u);
}

TEST(FrequentDirectionsTest, ShrinkNowCompactsBuffer) {
  FrequentDirections fd(
      10, FrequentDirections::Options{.ell = 6, .buffer_factor = 2.0});
  fd.AppendMatrix(RandomMatrix(11, 10, 23));  // Fills past ell, below 2*ell.
  EXPECT_GT(fd.RowsStored(), 6u);
  fd.ShrinkNow();
  EXPECT_LT(fd.RowsStored(), 6u + 1u);
}

TEST(FrequentDirectionsTest, GramEigenMatchesThinSvdWideRoute) {
  // The Gram-eigen shrink reproduces the ThinSvd shrink's arithmetic on
  // the wide (rows <= dim) route: same Gram, same eigensolver, same
  // normalization — only the U/V recovery is skipped. Drive both backends
  // through hundreds of shrinks and compare the surviving buffers.
  const size_t d = 64, n = 2000;
  Matrix a = RandomMatrix(n, d, 31);
  FrequentDirections gram_eigen(
      d, FrequentDirections::Options{
             .ell = 16, .shrink_backend = FdShrinkBackend::kGramEigen});
  FrequentDirections thinsvd(
      d, FrequentDirections::Options{
             .ell = 16, .shrink_backend = FdShrinkBackend::kThinSvd});
  for (size_t i = 0; i < n; ++i) {
    gram_eigen.Append(a.Row(i), i);
    thinsvd.Append(a.Row(i), i);
  }
  EXPECT_EQ(gram_eigen.shrink_count(), thinsvd.shrink_count());
  EXPECT_NEAR(gram_eigen.shed_mass(), thinsvd.shed_mass(),
              1e-9 * thinsvd.shed_mass());
  const double err_ge = AbsCovErr(a, gram_eigen.Approximation());
  const double err_ts = AbsCovErr(a, thinsvd.Approximation());
  EXPECT_NEAR(err_ge, err_ts, 1e-9 * std::max(err_ts, 1.0));
  EXPECT_LT(gram_eigen.Approximation().MaxAbsDiff(thinsvd.Approximation()),
            1e-7);
}

TEST(FrequentDirectionsTest, GramEigenMatchesThinSvdTallRoute) {
  // capacity > dim forces the tall (Gram = B^T B) route in both backends.
  const size_t d = 8, n = 400;
  Matrix a = RandomMatrix(n, d, 37);
  FrequentDirections gram_eigen(
      d, FrequentDirections::Options{
             .ell = 12, .shrink_backend = FdShrinkBackend::kGramEigen});
  FrequentDirections thinsvd(
      d, FrequentDirections::Options{
             .ell = 12, .shrink_backend = FdShrinkBackend::kThinSvd});
  for (size_t i = 0; i < n; ++i) {
    gram_eigen.Append(a.Row(i), i);
    thinsvd.Append(a.Row(i), i);
  }
  EXPECT_EQ(gram_eigen.shrink_count(), thinsvd.shrink_count());
  const double err_ge = AbsCovErr(a, gram_eigen.Approximation());
  const double err_ts = AbsCovErr(a, thinsvd.Approximation());
  EXPECT_NEAR(err_ge, err_ts, 1e-9 * std::max(err_ts, 1.0));
  EXPECT_LT(gram_eigen.Approximation().MaxAbsDiff(thinsvd.Approximation()),
            1e-7);
}

TEST(FrequentDirectionsTest, GramEigenExactOnLowRankStream) {
  // Adversarial low-rank input: every row lies in a rank-3 subspace. With
  // ell > 2 * 3 the shrink position sigma_{ell/2} is always past the
  // numerical rank, so lambda = 0 on every shrink: the Gram-eigen backend
  // must shed nothing and keep the covariance exact.
  const size_t d = 40, rank = 3, n = 500;
  Matrix basis = RandomMatrix(rank, d, 41);
  Rng rng(43);
  Matrix a(0, d);
  a.ReserveRows(n);
  for (size_t i = 0; i < n; ++i) {
    std::vector<double> row(d, 0.0);
    for (size_t k = 0; k < rank; ++k) {
      const double c = rng.Gaussian();
      for (size_t j = 0; j < d; ++j) row[j] += c * basis(k, j);
    }
    a.AppendRow(row);
  }
  FrequentDirections fd(d, FrequentDirections::Options{.ell = 16});
  fd.AppendMatrix(a);
  EXPECT_GT(fd.shrink_count(), 0u);
  EXPECT_EQ(fd.shed_mass(), 0.0);
  const double scale = a.FrobeniusNormSq();
  EXPECT_NEAR(AbsCovErr(a, fd.Approximation()), 0.0, 1e-9 * scale);
}

TEST(FrequentDirectionsTest, BufferedGramEigenKeepsShedMassBound) {
  // The amortized buffer must not weaken the guarantee under the
  // Gram-eigen backend: shed_mass <= ||A||_F^2 / shrink_rank and the
  // covariance error stays within shed_mass, in the narrow regime where
  // buffered shrinks replay per-row appends.
  const size_t d = 24;
  FrequentDirections fd(
      d, FrequentDirections::Options{.ell = 8, .buffer_factor = 2.0});
  Matrix a = RandomMatrix(500, d, 47);
  for (size_t i = 0; i < a.rows(); ++i) fd.Append(a.Row(i), i);
  EXPECT_GT(fd.shrink_count(), 0u);
  EXPECT_LE(fd.shed_mass(),
            fd.input_mass() / static_cast<double>(fd.shrink_rank()) *
                (1.0 + 1e-9));
  const double err = AbsCovErr(a, fd.Approximation());
  EXPECT_LE(err, fd.shed_mass() * (1.0 + 1e-9) + 1e-9);
}

TEST(FrequentDirectionsTest, RejectsBadConfig) {
  EXPECT_DEATH(FrequentDirections(4, 1), "");
  EXPECT_DEATH(FrequentDirections(
                   4, FrequentDirections::Options{.ell = 4, .shrink_rank = 5}),
               "");
}

TEST(FrequentDirectionsTest, RejectsWrongDim) {
  FrequentDirections fd(4, 4);
  std::vector<double> bad{1.0, 2.0};
  EXPECT_DEATH(fd.Append(bad, 0), "");
}

}  // namespace
}  // namespace swsketch
