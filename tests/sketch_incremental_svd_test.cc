// Tests for the iSVD baseline sketch.
#include "sketch/incremental_svd.h"

#include <gtest/gtest.h>

#include "eval/cov_err.h"
#include "sketch/frequent_directions.h"
#include "util/random.h"

namespace swsketch {
namespace {

Matrix RandomMatrix(size_t n, size_t d, uint64_t seed) {
  Rng rng(seed);
  Matrix m(n, d);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < d; ++j) m(i, j) = rng.Gaussian();
  }
  return m;
}

TEST(IncrementalSvdTest, BoundedRows) {
  IncrementalSvd isvd(10, 6);
  Matrix a = RandomMatrix(200, 10, 1);
  for (size_t i = 0; i < a.rows(); ++i) isvd.Append(a.Row(i), i);
  EXPECT_LE(isvd.Approximation().rows(), 6u);
}

TEST(IncrementalSvdTest, ExactWhenRankFits) {
  // Rank-3 stream with ell = 8: truncation discards nothing.
  Rng rng(2);
  Matrix basis = RandomMatrix(3, 12, 3);
  IncrementalSvd isvd(12, 8);
  Matrix a(0, 12);
  for (int i = 0; i < 120; ++i) {
    std::vector<double> row(12, 0.0);
    for (int c = 0; c < 3; ++c) {
      const double coeff = rng.Gaussian();
      for (size_t j = 0; j < 12; ++j) row[j] += coeff * basis(c, j);
    }
    a.AppendRow(row);
    isvd.Append(row, i);
  }
  EXPECT_LT(CovarianceErrorDense(a, isvd.Approximation()), 1e-6);
}

TEST(IncrementalSvdTest, AccurateOnSpikedSpectrum) {
  // Benign data: a strong low-rank signal plus weak noise — iSVD's happy
  // case ([19]): it tracks the top directions well.
  Rng rng(4);
  Matrix a(0, 16);
  IncrementalSvd isvd(16, 8);
  for (int i = 0; i < 400; ++i) {
    std::vector<double> row(16);
    for (size_t j = 0; j < 16; ++j) {
      row[j] = (j < 4 ? 5.0 : 0.2) * rng.Gaussian();
    }
    a.AppendRow(row);
    isvd.Append(row, i);
  }
  EXPECT_LT(CovarianceErrorDense(a, isvd.Approximation()), 0.1);
}

TEST(IncrementalSvdTest, NoGuaranteeUnlikeFd) {
  // iSVD's known failure vs FD's certificate: on a stream where the
  // dominant direction changes, truncation can permanently over-count the
  // early direction. We check FD's guarantee holds while iSVD may (and
  // with these parameters does) do worse.
  const size_t d = 20, ell = 5;
  Rng rng(5);
  Matrix a(0, d);
  IncrementalSvd isvd(d, ell);
  FrequentDirections fd(d, ell * 2);  // FD with same total buffer (2*ell).
  for (int phase = 0; phase < 10; ++phase) {
    for (int i = 0; i < 60; ++i) {
      std::vector<double> row(d, 0.0);
      row[phase * 2 % d] = 1.0 + 0.1 * rng.Gaussian();
      a.AppendRow(row);
      isvd.Append(row, i);
      fd.Append(row, i);
    }
  }
  const double fd_err = CovarianceErrorDense(a, fd.Approximation());
  EXPECT_LE(fd_err, 2.0 / static_cast<double>(ell) + 1e-9);
}

TEST(IncrementalSvdTest, ApproximationIsConsistentMidBuffer) {
  IncrementalSvd isvd(8, 4);
  Matrix a = RandomMatrix(6, 8, 6);  // Fewer than 2*ell rows.
  for (size_t i = 0; i < a.rows(); ++i) isvd.Append(a.Row(i), i);
  // Below ell rows are exact; between ell and 2*ell, the approximation is
  // the lazily-truncated top-ell.
  Matrix b = isvd.Approximation();
  EXPECT_LE(b.rows(), 4u);
  EXPECT_LT(CovarianceErrorDense(a, b), 0.8);
}

}  // namespace
}  // namespace swsketch
