// Tests for the streaming/offline norm-proportional samplers (Section 3).
#include "sketch/priority_sampler.h"

#include <cmath>
#include <map>

#include <gtest/gtest.h>

#include "eval/cov_err.h"

namespace swsketch {
namespace {

Matrix RandomMatrix(size_t n, size_t d, uint64_t seed) {
  Rng rng(seed);
  Matrix m(n, d);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < d; ++j) m(i, j) = rng.Gaussian();
  }
  return m;
}

TEST(LogPriorityTest, HigherWeightWinsMoreOften) {
  // Priority u^{1/w}: a weight-9 element should beat a weight-1 element
  // with probability 9/10.
  Rng rng(1);
  int wins = 0;
  const int trials = 20000;
  for (int t = 0; t < trials; ++t) {
    const double heavy = LogPriority(&rng, 9.0);
    const double light = LogPriority(&rng, 1.0);
    wins += heavy > light;
  }
  EXPECT_NEAR(wins / static_cast<double>(trials), 0.9, 0.01);
}

TEST(LogPriorityTest, NumericallyStableForHugeWeights) {
  // With w ~ 1e5 the direct form u^{1/w} collapses to ~1.0; log-domain
  // priorities must still distinguish values.
  Rng rng(2);
  std::map<double, int> seen;
  for (int t = 0; t < 100; ++t) seen[LogPriority(&rng, 1e5)]++;
  EXPECT_EQ(seen.size(), 100u);  // All distinct.
  for (const auto& [lp, n] : seen) EXPECT_LT(lp, 0.0);
}

TEST(StreamingSwrSamplerTest, SamplesProportionalToSquaredNorm) {
  // Two distinct rows with squared norms 1 and 4: the heavy row must be
  // sampled ~4/5 of the time.
  const int trials = 3000;
  int heavy = 0;
  for (int t = 0; t < trials; ++t) {
    StreamingSwrSampler s(2, 1, 1000 + t);
    std::vector<double> light_row{1.0, 0.0}, heavy_row{0.0, 2.0};
    s.Append(light_row, 0);
    s.Append(heavy_row, 1);
    auto samples = s.Samples();
    ASSERT_EQ(samples.size(), 1u);
    heavy += samples[0][1] != 0.0;
  }
  EXPECT_NEAR(heavy / static_cast<double>(trials), 0.8, 0.03);
}

TEST(StreamingSwrSamplerTest, ApproximationPreservesFrobenius) {
  // The SWR rescaling makes ||B||_F^2 = ||A||_F^2 exactly.
  Matrix a = RandomMatrix(100, 5, 3);
  StreamingSwrSampler s(5, 20, 4);
  for (size_t i = 0; i < a.rows(); ++i) s.Append(a.Row(i), i);
  EXPECT_NEAR(s.Approximation().FrobeniusNormSq(), a.FrobeniusNormSq(),
              1e-9 * a.FrobeniusNormSq());
}

TEST(StreamingSwrSamplerTest, ErrorDecreasesWithEll) {
  Matrix a = RandomMatrix(400, 8, 5);
  double err_small = 0.0, err_large = 0.0;
  for (uint64_t seed = 0; seed < 5; ++seed) {
    StreamingSwrSampler small(8, 4, 10 + seed), large(8, 256, 20 + seed);
    for (size_t i = 0; i < a.rows(); ++i) {
      small.Append(a.Row(i), i);
      large.Append(a.Row(i), i);
    }
    err_small += CovarianceErrorDense(a, small.Approximation());
    err_large += CovarianceErrorDense(a, large.Approximation());
  }
  EXPECT_LT(err_large, err_small);
  EXPECT_LT(err_large / 5.0, 0.3);
}

TEST(StreamingSworSamplerTest, NoDuplicates) {
  StreamingSworSampler s(3, 10, 6);
  Matrix a = RandomMatrix(50, 3, 7);
  for (size_t i = 0; i < a.rows(); ++i) s.Append(a.Row(i), i);
  auto samples = s.Samples();
  EXPECT_EQ(samples.size(), 10u);
  for (size_t i = 0; i < samples.size(); ++i) {
    for (size_t j = i + 1; j < samples.size(); ++j) {
      EXPECT_NE(samples[i], samples[j]);
    }
  }
}

TEST(StreamingSworSamplerTest, ReservoirBounded) {
  StreamingSworSampler s(4, 7, 8);
  Matrix a = RandomMatrix(200, 4, 9);
  for (size_t i = 0; i < a.rows(); ++i) s.Append(a.Row(i), i);
  EXPECT_EQ(s.RowsStored(), 7u);
}

TEST(StreamingSworSamplerTest, FrobeniusPreservedByRescaling) {
  Matrix a = RandomMatrix(120, 6, 10);
  StreamingSworSampler s(6, 15, 11);
  for (size_t i = 0; i < a.rows(); ++i) s.Append(a.Row(i), i);
  EXPECT_NEAR(s.Approximation().FrobeniusNormSq(), a.FrobeniusNormSq(),
              1e-9 * a.FrobeniusNormSq());
}

TEST(SamplersIgnoreZeroRows, BothSchemes) {
  StreamingSwrSampler swr(3, 4, 12);
  StreamingSworSampler swor(3, 4, 13);
  std::vector<double> zero{0.0, 0.0, 0.0}, one{1.0, 0.0, 0.0};
  swr.Append(zero, 0);
  swor.Append(zero, 0);
  EXPECT_EQ(swr.RowsStored(), 0u);
  EXPECT_EQ(swor.RowsStored(), 0u);
  swr.Append(one, 1);
  swor.Append(one, 1);
  EXPECT_GT(swr.RowsStored(), 0u);
  EXPECT_EQ(swor.RowsStored(), 1u);
}

TEST(SampleRowsOfflineTest, WithReplacementRowCount) {
  Matrix a = RandomMatrix(60, 4, 14);
  Rng rng(15);
  Matrix b = SampleRowsOffline(a, 25, /*with_replacement=*/true, &rng);
  EXPECT_EQ(b.rows(), 25u);
  EXPECT_EQ(b.cols(), 4u);
}

TEST(SampleRowsOfflineTest, WithoutReplacementCappedAtN) {
  Matrix a = RandomMatrix(10, 4, 16);
  Rng rng(17);
  Matrix b = SampleRowsOffline(a, 25, /*with_replacement=*/false, &rng);
  EXPECT_EQ(b.rows(), 10u);
}

TEST(SampleRowsOfflineTest, ErrorReasonableOnGaussian) {
  Matrix a = RandomMatrix(500, 6, 18);
  Rng rng(19);
  double err = 0.0;
  for (int t = 0; t < 5; ++t) {
    err += CovarianceErrorDense(
        a, SampleRowsOffline(a, 128, /*with_replacement=*/true, &rng));
  }
  EXPECT_LT(err / 5.0, 0.35);
}

TEST(SampleRowsOfflineTest, SworDegradesOnSkewedNorms) {
  // The Figure 6 phenomenon: a window with a few huge rows and many tiny
  // rows makes SWOR's common rescaling over-emphasize tiny sampled rows,
  // so sampling MORE rows makes it worse, while SWR stays controlled.
  const size_t d = 6;
  Rng gen(20);
  Matrix a(0, d);
  for (int i = 0; i < 20; ++i) {  // 20 huge rows.
    std::vector<double> r(d);
    for (auto& v : r) v = 100.0 * gen.Gaussian();
    a.AppendRow(r);
  }
  for (int i = 0; i < 2000; ++i) {  // Many tiny rows.
    std::vector<double> r(d);
    for (auto& v : r) v = 0.05 * gen.Gaussian();
    a.AppendRow(r);
  }
  Rng rng(21);
  double swor_few = 0.0, swor_many = 0.0;
  for (int t = 0; t < 5; ++t) {
    swor_few += CovarianceErrorDense(
        a, SampleRowsOffline(a, 20, /*with_replacement=*/false, &rng));
    swor_many += CovarianceErrorDense(
        a, SampleRowsOffline(a, 60, /*with_replacement=*/false, &rng));
  }
  // With ell > #huge rows, SWOR must include tiny rows and rescale them
  // up: error grows with the sample size.
  EXPECT_GT(swor_many, swor_few);
}

}  // namespace
}  // namespace swsketch
