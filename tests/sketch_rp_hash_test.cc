// Tests for the random projection and feature hashing sketches
// (Appendix A).
#include <cmath>

#include <gtest/gtest.h>

#include "eval/cov_err.h"
#include "sketch/hash_sketch.h"
#include "sketch/random_projection.h"
#include "util/random.h"

namespace swsketch {
namespace {

Matrix RandomMatrix(size_t n, size_t d, uint64_t seed) {
  Rng rng(seed);
  Matrix m(n, d);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < d; ++j) m(i, j) = rng.Gaussian();
  }
  return m;
}

void AppendAll(MatrixSketch* sketch, const Matrix& a, uint64_t id0 = 0) {
  for (size_t i = 0; i < a.rows(); ++i) sketch->Append(a.Row(i), id0 + i);
}

TEST(RandomProjectionTest, ShapeAndRows) {
  RandomProjection rp(10, 16, 1);
  EXPECT_EQ(rp.RowsStored(), 16u);
  EXPECT_EQ(rp.dim(), 10u);
  Matrix b = rp.Approximation();
  EXPECT_EQ(b.rows(), 16u);
  EXPECT_EQ(b.cols(), 10u);
}

TEST(RandomProjectionTest, PreservesFrobeniusInExpectation) {
  // E[||RA||_F^2] = ||A||_F^2; check it is within a small factor.
  Matrix a = RandomMatrix(200, 8, 2);
  RandomProjection rp(8, 64, 3);
  AppendAll(&rp, a);
  const double ratio = rp.Approximation().FrobeniusNormSq() /
                       a.FrobeniusNormSq();
  EXPECT_GT(ratio, 0.5);
  EXPECT_LT(ratio, 2.0);
}

TEST(RandomProjectionTest, CovarianceErrorShrinksWithEll) {
  Matrix a = RandomMatrix(300, 10, 4);
  double prev = 1e9;
  for (size_t ell : {8, 64, 512}) {
    double err_sum = 0.0;
    for (uint64_t seed = 0; seed < 3; ++seed) {
      RandomProjection rp(10, ell, 100 + seed);
      AppendAll(&rp, a);
      err_sum += CovarianceErrorDense(a, rp.Approximation());
    }
    const double err = err_sum / 3.0;
    EXPECT_LT(err, prev * 1.05) << "ell=" << ell;
    prev = err;
  }
  // With ell = 512 >> d the error must be small.
  EXPECT_LT(prev, 0.25);
}

TEST(RandomProjectionTest, MergeEquivalentToConcatenatedStream) {
  // Merging B1 = R1 A1, B2 = R2 A2 equals sketching [A1; A2] with the
  // block projection [R1, R2]: check the covariance error stays in the
  // same regime as a single-projection run.
  Matrix a1 = RandomMatrix(100, 6, 5);
  Matrix a2 = RandomMatrix(120, 6, 6);
  RandomProjection rp1(6, 128, 7), rp2(6, 128, 8);
  AppendAll(&rp1, a1);
  AppendAll(&rp2, a2);
  rp1.MergeWith(rp2);
  const Matrix stacked = a1.VStack(a2);
  EXPECT_LT(CovarianceErrorDense(stacked, rp1.Approximation()), 0.5);
}

TEST(HashFamilyTest, DeterministicAndSeedDependent) {
  HashFamily h1(1), h2(1), h3(2);
  for (uint64_t k = 0; k < 100; ++k) {
    EXPECT_EQ(h1.Bucket(k, 64), h2.Bucket(k, 64));
    EXPECT_EQ(h1.Sign(k), h2.Sign(k));
  }
  int diff = 0;
  for (uint64_t k = 0; k < 100; ++k) diff += h1.Bucket(k, 64) != h3.Bucket(k, 64);
  EXPECT_GT(diff, 50);
}

TEST(HashFamilyTest, BucketsRoughlyUniform) {
  HashFamily h(3);
  const size_t buckets = 16;
  std::vector<int> counts(buckets, 0);
  const int n = 64000;
  for (int k = 0; k < n; ++k) ++counts[h.Bucket(k, buckets)];
  for (int c : counts) EXPECT_NEAR(c, n / 16.0, n / 16.0 * 0.2);
}

TEST(HashFamilyTest, SignsBalanced) {
  HashFamily h(4);
  double sum = 0.0;
  for (uint64_t k = 0; k < 100000; ++k) sum += h.Sign(k);
  EXPECT_LT(std::fabs(sum) / 100000.0, 0.02);
}

TEST(HashSketchTest, SingleRowRecoverable) {
  // One row hashes into one bucket with sign +-1: B^T B = a^T a exactly.
  HashSketch hs(5, 8, 1);
  std::vector<double> row{1, 2, 3, 4, 5};
  hs.Append(row, 7);
  Matrix a(0, 5);
  a.AppendRow(row);
  EXPECT_NEAR(CovarianceErrorDense(a, hs.Approximation()), 0.0, 1e-12);
}

TEST(HashSketchTest, CovarianceErrorShrinksWithEll) {
  Matrix a = RandomMatrix(300, 6, 9);
  double prev = 1e9;
  for (size_t ell : {16, 128, 1024}) {
    double err_sum = 0.0;
    for (uint64_t seed = 0; seed < 3; ++seed) {
      HashSketch hs(6, ell, 50 + seed);
      AppendAll(&hs, a);
      err_sum += CovarianceErrorDense(a, hs.Approximation());
    }
    const double err = err_sum / 3.0;
    EXPECT_LT(err, prev * 1.05) << "ell=" << ell;
    prev = err;
  }
  EXPECT_LT(prev, 0.2);
}

TEST(HashSketchTest, MergeWithSharedSeedMatchesSingleSketch) {
  // Mergeability (Appendix A): same (h, g) and globally distinct ids =>
  // merge by addition is EXACTLY the sketch of the concatenated stream.
  Matrix a1 = RandomMatrix(50, 7, 10);
  Matrix a2 = RandomMatrix(60, 7, 11);
  HashSketch h1(7, 32, 5), h2(7, 32, 5), whole(7, 32, 5);
  AppendAll(&h1, a1, 0);
  AppendAll(&h2, a2, a1.rows());
  AppendAll(&whole, a1, 0);
  AppendAll(&whole, a2, a1.rows());
  h1.MergeWith(h2);
  EXPECT_TRUE(
      h1.Approximation().ApproxEquals(whole.Approximation(), 1e-12));
}

TEST(HashSketchTest, MergeRequiresSameSeed) {
  HashSketch h1(4, 8, 1), h2(4, 8, 2);
  EXPECT_DEATH(h1.MergeWith(h2), "");
}

TEST(HashSketchTest, RejectsWrongDim) {
  HashSketch hs(4, 8, 1);
  std::vector<double> bad{1.0};
  EXPECT_DEATH(hs.Append(bad, 0), "");
}

}  // namespace
}  // namespace swsketch
