// Tests for the incrementally-maintained exact window covariance.
#include "stream/incremental_gram.h"

#include <gtest/gtest.h>

#include "stream/window_buffer.h"
#include "util/random.h"

namespace swsketch {
namespace {

std::vector<double> RandomRow(Rng* rng, size_t d) {
  std::vector<double> r(d);
  for (auto& v : r) v = rng->Gaussian();
  return r;
}

TEST(IncrementalWindowGramTest, MatchesRecomputedGramOnSequenceWindow) {
  const size_t d = 6;
  IncrementalWindowGram inc(d, WindowSpec::Sequence(40));
  WindowBuffer ref(WindowSpec::Sequence(40));
  Rng rng(1);
  for (int i = 0; i < 300; ++i) {
    auto row = RandomRow(&rng, d);
    inc.Add(row, i);
    ref.Add(Row(row, i));
    if (i % 37 == 0) {
      EXPECT_TRUE(inc.Covariance().ApproxEquals(ref.GramMatrix(d), 1e-9));
      EXPECT_NEAR(inc.FrobeniusNormSq(), ref.FrobeniusNormSq(), 1e-9);
      EXPECT_EQ(inc.WindowRows(), ref.size());
    }
  }
}

TEST(IncrementalWindowGramTest, TimeWindowWithGaps) {
  const size_t d = 4;
  IncrementalWindowGram inc(d, WindowSpec::Time(10.0));
  WindowBuffer ref(WindowSpec::Time(10.0));
  Rng rng(2);
  double t = 0.0;
  for (int i = 0; i < 500; ++i) {
    t += rng.Exponential(1.0);
    auto row = RandomRow(&rng, d);
    inc.Add(row, t);
    ref.Add(Row(row, t));
  }
  EXPECT_TRUE(inc.Covariance().ApproxEquals(ref.GramMatrix(d), 1e-8));
  // Everything expires.
  inc.AdvanceTo(t + 100.0);
  EXPECT_EQ(inc.WindowRows(), 0u);
  EXPECT_EQ(inc.Covariance().FrobeniusNormSq(), 0.0);
  EXPECT_EQ(inc.FrobeniusNormSq(), 0.0);
}

TEST(IncrementalWindowGramTest, RefreshCancelsDrift) {
  const size_t d = 5;
  IncrementalWindowGram inc(d, WindowSpec::Sequence(20));
  inc.set_refresh_interval(64);  // Force frequent refreshes.
  WindowBuffer ref(WindowSpec::Sequence(20));
  Rng rng(3);
  for (int i = 0; i < 2000; ++i) {
    // Mix of very large and very small magnitudes to provoke cancellation.
    const double scale = rng.Bernoulli(0.1) ? 1e6 : 1e-3;
    auto row = RandomRow(&rng, d);
    for (auto& v : row) v *= scale;
    inc.Add(row, i);
    ref.Add(Row(row, i));
  }
  const Matrix expected = ref.GramMatrix(d);
  const double scale = expected.FrobeniusNormSq();
  EXPECT_TRUE(inc.Covariance().ApproxEquals(expected, 1e-9 * (1.0 + scale)));
}

TEST(IncrementalWindowGramTest, Preconditions) {
  IncrementalWindowGram inc(3, WindowSpec::Sequence(5));
  std::vector<double> bad(2, 1.0);
  EXPECT_DEATH(inc.Add(bad, 0.0), "");
  std::vector<double> good(3, 1.0);
  inc.Add(good, 5.0);
  EXPECT_DEATH(inc.Add(good, 4.0), "");
  EXPECT_DEATH(IncrementalWindowGram(0, WindowSpec::Sequence(5)), "");
}

}  // namespace
}  // namespace swsketch
