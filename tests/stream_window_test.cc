// Tests for window specs and the evaluation window buffer.
#include <gtest/gtest.h>

#include "stream/window.h"
#include "stream/window_buffer.h"

namespace swsketch {
namespace {

TEST(WindowSpecTest, SequenceContainsLastN) {
  WindowSpec w = WindowSpec::Sequence(3);
  // At index 10 the live indices are 8, 9, 10.
  EXPECT_TRUE(w.Contains(8, 10));
  EXPECT_TRUE(w.Contains(10, 10));
  EXPECT_FALSE(w.Contains(7, 10));
}

TEST(WindowSpecTest, TimeWindowBoundary) {
  WindowSpec w = WindowSpec::Time(5.0);
  EXPECT_TRUE(w.Contains(5.0, 10.0));
  EXPECT_TRUE(w.Contains(7.5, 10.0));
  EXPECT_FALSE(w.Contains(4.999, 10.0));
}

TEST(WindowSpecTest, ToStringDescribes) {
  EXPECT_EQ(WindowSpec::Sequence(100).ToString(), "sequence(N=100)");
  EXPECT_NE(WindowSpec::Time(2.5).ToString().find("time"), std::string::npos);
}

TEST(WindowSpecTest, RejectsZeroExtent) {
  EXPECT_DEATH(WindowSpec::Sequence(0), "");
  EXPECT_DEATH(WindowSpec::Time(0.0), "");
}

TEST(WindowBufferTest, SequenceKeepsExactlyN) {
  WindowBuffer buf(WindowSpec::Sequence(3));
  for (int i = 0; i < 10; ++i) {
    buf.Add(Row({static_cast<double>(i)}, static_cast<double>(i)));
  }
  EXPECT_EQ(buf.size(), 3u);
  EXPECT_DOUBLE_EQ(buf.rows().front().values[0], 7.0);
  EXPECT_DOUBLE_EQ(buf.rows().back().values[0], 9.0);
}

TEST(WindowBufferTest, TimeExpiresByTimestamp) {
  WindowBuffer buf(WindowSpec::Time(1.0));
  buf.Add(Row({1.0}, 0.0));
  buf.Add(Row({2.0}, 0.5));
  buf.Add(Row({3.0}, 1.2));  // Expires ts=0.0 (< 0.2).
  EXPECT_EQ(buf.size(), 2u);
  buf.AdvanceTo(2.0);  // Window [1.0, 2.0]: expires ts=0.5.
  EXPECT_EQ(buf.size(), 1u);
  buf.AdvanceTo(3.0);
  EXPECT_TRUE(buf.empty());
}

TEST(WindowBufferTest, FrobeniusTracksWindow) {
  WindowBuffer buf(WindowSpec::Sequence(2));
  buf.Add(Row({3.0, 4.0}, 0));   // Norm^2 = 25.
  buf.Add(Row({1.0, 0.0}, 1));   // Norm^2 = 1.
  EXPECT_DOUBLE_EQ(buf.FrobeniusNormSq(), 26.0);
  buf.Add(Row({0.0, 2.0}, 2));   // Evicts the 25.
  EXPECT_DOUBLE_EQ(buf.FrobeniusNormSq(), 5.0);
}

TEST(WindowBufferTest, GramMatchesToMatrix) {
  WindowBuffer buf(WindowSpec::Sequence(4));
  buf.Add(Row({1.0, 2.0}, 0));
  buf.Add(Row({3.0, -1.0}, 1));
  Matrix a = buf.ToMatrix();
  EXPECT_TRUE(buf.GramMatrix(2).ApproxEquals(a.Gram(), 1e-12));
}

TEST(WindowBufferTest, EmptyBufferProducesEmptyMatrix) {
  WindowBuffer buf(WindowSpec::Sequence(4));
  EXPECT_TRUE(buf.ToMatrix().empty());
  EXPECT_DOUBLE_EQ(buf.FrobeniusNormSq(), 0.0);
}

TEST(RowTest, NormSq) {
  Row r({3.0, 4.0}, 1.5);
  EXPECT_DOUBLE_EQ(r.NormSq(), 25.0);
  EXPECT_EQ(r.dim(), 2u);
  EXPECT_DOUBLE_EQ(r.ts, 1.5);
}

}  // namespace
}  // namespace swsketch
