// Multi-tenant manager correctness (ISSUE 8): eviction/spill must be
// invisible to queries (a spilled-and-reloaded tenant answers
// byte-identically to a never-evicted twin), the keyed batch path must be
// bit-identical to feeding each tenant alone, the memory budget must pin
// resident bytes at 100k-tenant scale, and the arena must recycle slots
// (reserved bytes plateau at the resident high-water mark, not at the
// tenant count).
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/factory.h"
#include "linalg/matrix.h"
#include "service/tenant_manager.h"
#include "util/metrics.h"
#include "util/random.h"

namespace swsketch {
namespace {

int64_t G(const std::string& name) {
  return MetricsRegistry::Global().GetGauge(name)->Value();
}

Matrix GaussianRows(size_t n, size_t d, uint64_t seed) {
  Rng rng(seed);
  Matrix m(n, d);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < d; ++j) m(i, j) = rng.Gaussian();
  }
  return m;
}

SketchConfig Config(const std::string& algorithm, size_t d) {
  SketchConfig config;
  config.algorithm = algorithm;
  config.ell = 8;
  config.levels = 4;
  config.max_norm_sq = 16.0 * static_cast<double>(d);
  config.seed = 7;
  return config;
}

// A tenant that is evicted and reloaded mid-stream must stay in byte
// lockstep with a standalone sketch that never left memory.
TEST(TenantManagerTest, EvictReloadQueryBitIdentical) {
  const size_t d = 8;
  const Matrix rows = GaussianRows(400, d, 1);
  struct Case {
    const char* algorithm;
    WindowSpec window;
  };
  const Case cases[] = {
      {"lm-fd", WindowSpec::Sequence(100)},
      {"lm-fd", WindowSpec::Time(60.0)},
      {"lm-hash", WindowSpec::Sequence(100)},
      {"lm-hash", WindowSpec::Time(60.0)},
      {"di-fd", WindowSpec::Sequence(100)},
  };
  for (const Case& c : cases) {
    const SketchConfig config = Config(c.algorithm, d);
    TenantManager::Options options;
    options.metrics_prefix = "tm_bitstable";
    auto made = TenantManager::Make(d, c.window, config, options);
    ASSERT_TRUE(made.ok()) << c.algorithm;
    auto& manager = *made.value();
    auto twin = MakeSlidingWindowSketch(d, c.window, config);
    ASSERT_TRUE(twin.ok()) << c.algorithm;

    const uint64_t key = 42;
    for (size_t i = 0; i < rows.rows(); ++i) {
      const double ts = static_cast<double>(i) * 0.7 + 1.0;
      ASSERT_TRUE(manager.Update(key, rows.Row(i), ts).ok());
      // Noise tenants so the manager is not trivially single-key.
      ASSERT_TRUE(manager.Update(7 + (i % 3), rows.Row(i), ts).ok());
      (*twin)->Update(rows.Row(i), ts);
      if (i % 61 == 17) {
        ASSERT_TRUE(manager.EvictTenant(key).ok()) << c.algorithm;
        EXPECT_FALSE(manager.IsResident(key));
        EXPECT_GT(manager.spill_bytes(), 0u);
      }
      if (i % 37 == 11) {
        auto got = manager.Query(key);
        ASSERT_TRUE(got.ok()) << c.algorithm;
        const Matrix want = (*twin)->Query();
        ASSERT_EQ(got.value().rows(), want.rows())
            << c.algorithm << " row " << i;
        EXPECT_EQ(got.value().MaxAbsDiff(want), 0.0)
            << c.algorithm << " row " << i;
        EXPECT_TRUE(manager.IsResident(key));  // Query reloaded it.
      }
    }
    // Evict one final time, then compare the reloaded answer.
    ASSERT_TRUE(manager.EvictTenant(key).ok());
    auto got = manager.Query(key);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got.value().MaxAbsDiff((*twin)->Query()), 0.0) << c.algorithm;
  }
}

// UpdateKeyed over an interleaved multi-key stream must leave every tenant
// bit-identical to a standalone sketch fed only that tenant's rows.
TEST(TenantManagerTest, KeyedBatchBitIdenticalToPerTenantStream) {
  const size_t d = 6;
  const size_t num_keys = 8;
  const Matrix rows = GaussianRows(600, d, 2);
  for (const char* algorithm : {"lm-fd", "lm-hash", "exact"}) {
    const SketchConfig config = Config(algorithm, d);
    const WindowSpec window = WindowSpec::Sequence(80);
    TenantManager::Options options;
    options.metrics_prefix = "tm_keyed";
    auto made = TenantManager::Make(d, window, config, options);
    ASSERT_TRUE(made.ok()) << algorithm;
    auto& manager = *made.value();

    std::vector<std::unique_ptr<SlidingWindowSketch>> twins;
    for (size_t k = 0; k < num_keys; ++k) {
      auto t = MakeSlidingWindowSketch(d, window, config);
      ASSERT_TRUE(t.ok());
      twins.push_back(t.take());
    }

    // Ragged batches of interleaved keys (zipf-ish so group sizes vary).
    Rng rng(3);
    size_t i = 0;
    const size_t sizes[] = {1, 3, 17, 64, 128, 5};
    size_t b = 0;
    while (i < rows.rows()) {
      const size_t batch = std::min(sizes[b++ % 6], rows.rows() - i);
      std::vector<KeyedRow> keyed(batch);
      for (size_t j = 0; j < batch; ++j, ++i) {
        const double u = rng.Uniform01();
        const uint64_t key = static_cast<uint64_t>(u * u * num_keys);
        const double ts = static_cast<double>(i + 1);
        keyed[j] = KeyedRow{key, ts, rows.Row(i)};
        twins[key]->Update(rows.Row(i), ts);
      }
      ASSERT_TRUE(manager.UpdateKeyed(keyed).ok()) << algorithm;
    }
    for (size_t k = 0; k < num_keys; ++k) {
      auto got = manager.Query(k);
      ASSERT_TRUE(got.ok()) << algorithm;
      const Matrix want = twins[k]->Query();
      ASSERT_EQ(got.value().rows(), want.rows()) << algorithm << " key " << k;
      EXPECT_EQ(got.value().MaxAbsDiff(want), 0.0) << algorithm << " key " << k;
    }
  }
}

// The keyed path with organic budget eviction between batches still
// matches the never-evicted standalones bitwise.
TEST(TenantManagerTest, KeyedBatchWithEvictionBitIdentical) {
  const size_t d = 6;
  const size_t num_keys = 16;
  const Matrix rows = GaussianRows(800, d, 4);
  const SketchConfig config = Config("lm-fd", d);
  const WindowSpec window = WindowSpec::Sequence(64);
  TenantManager::Options options;
  options.metrics_prefix = "tm_keyed_evict";
  options.memory_budget_bytes = 1;  // Evict down to min_resident every batch.
  options.min_resident_tenants = 3;
  auto made = TenantManager::Make(d, window, config, options);
  ASSERT_TRUE(made.ok());
  auto& manager = *made.value();

  std::vector<std::unique_ptr<SlidingWindowSketch>> twins;
  for (size_t k = 0; k < num_keys; ++k) {
    auto t = MakeSlidingWindowSketch(d, window, config);
    ASSERT_TRUE(t.ok());
    twins.push_back(t.take());
  }
  Rng rng(5);
  for (size_t i = 0; i < rows.rows();) {
    const size_t batch = std::min<size_t>(1 + rng.UniformInt(40),
                                          rows.rows() - i);
    std::vector<KeyedRow> keyed(batch);
    for (size_t j = 0; j < batch; ++j, ++i) {
      const uint64_t key = rng.Next() % num_keys;
      const double ts = static_cast<double>(i + 1);
      keyed[j] = KeyedRow{key, ts, rows.Row(i)};
      twins[key]->Update(rows.Row(i), ts);
    }
    ASSERT_TRUE(manager.UpdateKeyed(keyed).ok());
    EXPECT_LE(manager.resident_tenants(), options.min_resident_tenants)
        << "budget of 1 byte must evict to the floor";
  }
  for (size_t k = 0; k < num_keys; ++k) {
    auto got = manager.Query(k);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got.value().MaxAbsDiff(twins[k]->Query()), 0.0) << "key " << k;
  }
}

// 100k tenants under a fixed budget: no OOM, the resident-bytes gauge
// stays under the budget, and every tenant (resident or spilled) still
// answers.
TEST(TenantManagerTest, HundredThousandTenantsUnderBudget) {
  const size_t d = 4;
  const size_t num_keys = 100000;
  SketchConfig config = Config("lm-hash", d);
  config.ell = 4;
  TenantManager::Options options;
  options.metrics_prefix = "tm_100k";
  options.memory_budget_bytes = 16 << 20;  // 16 MiB.
  const int64_t gauge0 = G("tm_100k.resident_bytes");
  auto made = TenantManager::Make(d, WindowSpec::Sequence(16), config,
                                  options);
  ASSERT_TRUE(made.ok());
  auto& manager = *made.value();

  Rng rng(6);
  std::vector<double> row(d);
  for (size_t k = 0; k < num_keys; ++k) {
    for (auto& v : row) v = rng.Gaussian();
    ASSERT_TRUE(manager.Update(k, row, static_cast<double>(k + 1)).ok());
    if (k % 8192 == 0) {
      EXPECT_LE(manager.resident_bytes(), options.memory_budget_bytes);
    }
  }
  EXPECT_EQ(manager.num_tenants(), num_keys);
  EXPECT_EQ(manager.resident_tenants() + manager.spilled_tenants(), num_keys);
  EXPECT_LE(manager.resident_bytes(), options.memory_budget_bytes);
  EXPECT_GT(manager.spilled_tenants(), num_keys / 2);  // Budget really bound.
  EXPECT_EQ(G("tm_100k.resident_bytes") - gauge0,
            static_cast<int64_t>(manager.resident_bytes()));
  // The arena only reserves slabs for the resident high-water mark, which
  // the budget bounds — not one slab per tenant. (Slab stride is part of
  // each tenant's charge, so reserved bytes track the budget, give or take
  // chunk granularity.)
  EXPECT_LE(manager.arena_reserved_bytes(),
            2 * options.memory_budget_bytes);
  // Spilled and resident tenants both answer (reload on touch).
  for (uint64_t k = 0; k < num_keys; k += 9973) {
    auto got = manager.Query(k);
    ASSERT_TRUE(got.ok()) << "key " << k;
    EXPECT_EQ(got.value().cols(), d);
  }
}

// Evicted slots are recycled: churning tenants through a tiny resident set
// must not grow the arena beyond the high-water chunk count.
TEST(TenantManagerTest, ArenaRecyclesEvictedSlots) {
  const size_t d = 4;
  SketchConfig config = Config("lm-fd", d);
  config.ell = 4;
  TenantManager::Options options;
  options.metrics_prefix = "tm_recycle";
  options.memory_budget_bytes = 1;  // Always evict to the floor.
  options.min_resident_tenants = 4;
  options.slots_per_chunk = 8;
  auto made = TenantManager::Make(d, WindowSpec::Sequence(8), config,
                                  options);
  ASSERT_TRUE(made.ok());
  auto& manager = *made.value();
  std::vector<double> row(d, 1.0);
  size_t plateau = 0;
  for (uint64_t k = 0; k < 400; ++k) {
    ASSERT_TRUE(manager.Update(k, row, static_cast<double>(k + 1)).ok());
    if (k == 49) plateau = manager.arena_reserved_bytes();
  }
  EXPECT_EQ(manager.num_tenants(), 400u);
  EXPECT_LE(manager.resident_tenants(), 4u + 1u);
  // The resident high-water mark is hit within the first 50 tenants; the
  // remaining 350 churn through recycled slots without a single new chunk.
  EXPECT_GT(plateau, 0u);
  EXPECT_EQ(manager.arena_reserved_bytes(), plateau);
}

TEST(TenantManagerTest, MissingKeyReturnsEmptyWithoutCreating) {
  const size_t d = 5;
  auto made = TenantManager::Make(d, WindowSpec::Sequence(10),
                                  Config("lm-fd", d));
  ASSERT_TRUE(made.ok());
  auto& manager = *made.value();
  auto got = manager.Query(123);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value().rows(), 0u);
  EXPECT_EQ(got.value().cols(), d);
  EXPECT_EQ(manager.num_tenants(), 0u);
  EXPECT_FALSE(manager.IsResident(123));
}

TEST(TenantManagerTest, UpdateAfterReloadStaysBitStable) {
  const size_t d = 8;
  const Matrix rows = GaussianRows(300, d, 8);
  const SketchConfig config = Config("lm-fd", d);
  const WindowSpec window = WindowSpec::Sequence(60);
  TenantManager::Options options;
  options.metrics_prefix = "tm_reload_update";
  auto made = TenantManager::Make(d, window, config, options);
  ASSERT_TRUE(made.ok());
  auto& manager = *made.value();
  auto twin = MakeSlidingWindowSketch(d, window, config);
  ASSERT_TRUE(twin.ok());
  for (size_t i = 0; i < rows.rows(); ++i) {
    const double ts = static_cast<double>(i + 1);
    if (i == 150) {
      ASSERT_TRUE(manager.EvictTenant(9).ok());
    }
    // Update() reloads the spilled tenant before applying the row.
    ASSERT_TRUE(manager.Update(9, rows.Row(i), ts).ok());
    (*twin)->Update(rows.Row(i), ts);
  }
  auto got = manager.Query(9);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value().MaxAbsDiff((*twin)->Query()), 0.0);
}

TEST(TenantManagerTest, ErrorPaths) {
  const size_t d = 4;
  // A budget requires a serializable algorithm.
  {
    TenantManager::Options options;
    options.memory_budget_bytes = 1 << 20;
    auto made = TenantManager::Make(d, WindowSpec::Sequence(10),
                                    Config("lm-rp", d), options);
    EXPECT_FALSE(made.ok());
  }
  // Unbudgeted lm-rp works, but cannot be explicitly evicted.
  {
    auto made = TenantManager::Make(d, WindowSpec::Sequence(10),
                                    Config("lm-rp", d));
    ASSERT_TRUE(made.ok());
    auto& manager = *made.value();
    std::vector<double> row(d, 1.0);
    ASSERT_TRUE(manager.Update(1, row, 1.0).ok());
    EXPECT_EQ(manager.EvictTenant(1).code(), StatusCode::kUnimplemented);
    EXPECT_EQ(manager.EvictTenant(99).code(), StatusCode::kNotFound);
    // Double-evict of a serializable manager is a no-op (tested above);
    // here a dim mismatch is rejected before touching any tenant.
    std::vector<double> bad(d + 1, 1.0);
    EXPECT_EQ(manager.Update(1, bad, 2.0).code(),
              StatusCode::kInvalidArgument);
    EXPECT_EQ(manager.num_tenants(), 1u);
  }
  // Unknown algorithm propagates the factory error.
  {
    auto made = TenantManager::Make(d, WindowSpec::Sequence(10),
                                    Config("no-such-algo", d));
    EXPECT_FALSE(made.ok());
  }
}

TEST(TenantManagerTest, CreateTenantIsIdempotent) {
  const size_t d = 4;
  auto made = TenantManager::Make(d, WindowSpec::Sequence(10),
                                  Config("lm-fd", d));
  ASSERT_TRUE(made.ok());
  auto& manager = *made.value();
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(manager.CreateTenant(5).ok());
  }
  EXPECT_EQ(manager.num_tenants(), 1u);
  EXPECT_TRUE(manager.IsResident(5));
  auto got = manager.Query(5);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value().rows(), 0u);  // Provisioned but empty.
}

}  // namespace
}  // namespace swsketch
