// Tests for the sliding-window sum sketch (exponential/smooth histogram).
#include "util/exponential_histogram.h"

#include <cmath>
#include <deque>
#include <vector>

#include <gtest/gtest.h>

#include "util/random.h"

namespace swsketch {
namespace {

TEST(ExponentialHistogramTest, EmptyEstimateIsZero) {
  ExponentialHistogram eh(0.1);
  EXPECT_EQ(eh.Estimate(0.0), 0.0);
  EXPECT_EQ(eh.NumBuckets(), 0u);
}

TEST(ExponentialHistogramTest, SingleElementExact) {
  ExponentialHistogram eh(0.1);
  eh.Add(5.0, 1.0);
  EXPECT_DOUBLE_EQ(eh.Estimate(0.0), 5.0);
  EXPECT_DOUBLE_EQ(eh.Estimate(1.0), 5.0);
  EXPECT_DOUBLE_EQ(eh.Estimate(1.5), 0.0);
}

TEST(ExponentialHistogramTest, FullSuffixSumAlwaysExact) {
  // The newest boundary is each arrival: asking for a window that covers
  // everything returns the total exactly.
  ExponentialHistogram eh(0.2);
  double total = 0.0;
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const double v = 1.0 + rng.Uniform01() * 9.0;
    eh.Add(v, static_cast<double>(i));
    total += v;
  }
  EXPECT_NEAR(eh.Estimate(0.0), total, total * 1e-12);
}

TEST(ExponentialHistogramTest, UnderestimatesAndWithinEps) {
  const double eps = 0.1;
  ExponentialHistogram eh(eps);
  std::deque<std::pair<double, double>> all;  // (ts, value)
  Rng rng(2);
  for (int i = 0; i < 5000; ++i) {
    const double v = 1.0 + rng.Uniform01() * 99.0;  // values in [1, 100]
    eh.Add(v, static_cast<double>(i));
    all.emplace_back(static_cast<double>(i), v);
  }
  // Query many window starts and compare against the exact sum.
  for (int start = 0; start < 5000; start += 137) {
    double exact = 0.0;
    for (const auto& [ts, v] : all) {
      if (ts >= start) exact += v;
    }
    const double est = eh.Estimate(start);
    EXPECT_LE(est, exact * (1.0 + 1e-9)) << "start=" << start;
    EXPECT_GE(est, exact * (1.0 - eps) - 1e-9) << "start=" << start;
  }
}

TEST(ExponentialHistogramTest, SpaceIsLogarithmic) {
  const double eps = 0.1;
  ExponentialHistogram eh(eps);
  Rng rng(3);
  for (int i = 0; i < 100000; ++i) {
    eh.Add(1.0 + rng.Uniform01() * 9.0, static_cast<double>(i));
  }
  // Expected O((1/eps) * log(sum)) boundaries; sum ~ 5.5e5 => log2 ~ 19.
  // 1/eps * log(NR) with slack.
  EXPECT_LT(eh.NumBuckets(), 400u);
}

TEST(ExponentialHistogramTest, EvictionKeepsAnswersForNewerWindows) {
  const double eps = 0.1;
  ExponentialHistogram eh(eps);
  for (int i = 0; i < 1000; ++i) eh.Add(2.0, static_cast<double>(i));
  const size_t before = eh.NumBuckets();
  eh.EvictBefore(900.0);
  EXPECT_LE(eh.NumBuckets(), before);
  const double exact = 2.0 * (1000 - 950);
  const double est = eh.Estimate(950.0);
  EXPECT_LE(est, exact + 1e-9);
  EXPECT_GE(est, exact * (1.0 - eps) - 1e-9);
}

TEST(ExponentialHistogramTest, HeavyTailValues) {
  // Values spanning [1, 1e5] (PAMAP-like R): the multiplicative guarantee
  // must hold regardless of skew.
  const double eps = 0.15;
  ExponentialHistogram eh(eps);
  Rng rng(5);
  std::vector<std::pair<double, double>> all;
  for (int i = 0; i < 3000; ++i) {
    const double v = std::exp(rng.Uniform(0.0, std::log(1e5)));
    eh.Add(v, static_cast<double>(i));
    all.emplace_back(static_cast<double>(i), v);
  }
  for (int start = 0; start < 3000; start += 101) {
    double exact = 0.0;
    for (const auto& [ts, v] : all) {
      if (ts >= start) exact += v;
    }
    const double est = eh.Estimate(start);
    EXPECT_LE(est, exact * (1.0 + 1e-9));
    EXPECT_GE(est, exact * (1.0 - eps) - 1e-9);
  }
}

TEST(ExponentialHistogramTest, RealTimestampsWithGaps) {
  const double eps = 0.1;
  ExponentialHistogram eh(eps);
  Rng rng(7);
  double t = 0.0;
  std::vector<std::pair<double, double>> all;
  for (int i = 0; i < 2000; ++i) {
    t += rng.Exponential(0.5);  // Poisson arrivals.
    const double v = 1.0 + rng.Uniform01() * 10.0;
    eh.Add(v, t);
    all.emplace_back(t, v);
  }
  for (double start = 0.0; start < t; start += t / 23.0) {
    double exact = 0.0;
    for (const auto& [ts, v] : all) {
      if (ts >= start) exact += v;
    }
    const double est = eh.Estimate(start);
    EXPECT_LE(est, exact * (1.0 + 1e-9) + 1e-9);
    EXPECT_GE(est, exact * (1.0 - eps) - 1e-9);
  }
}

TEST(ExponentialHistogramTest, RejectsInvalidEps) {
  EXPECT_DEATH(ExponentialHistogram(0.0), "");
  EXPECT_DEATH(ExponentialHistogram(1.0), "");
}

TEST(ExponentialHistogramTest, RejectsNonPositiveValues) {
  ExponentialHistogram eh(0.1);
  EXPECT_DEATH(eh.Add(0.0, 1.0), "");
  EXPECT_DEATH(eh.Add(-1.0, 1.0), "");
}

TEST(ExponentialHistogramTest, RejectsDecreasingTimestamps) {
  ExponentialHistogram eh(0.1);
  eh.Add(1.0, 10.0);
  EXPECT_DEATH(eh.Add(1.0, 9.0), "");
}

}  // namespace
}  // namespace swsketch
