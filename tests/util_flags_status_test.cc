// Tests for Status/Result and the mini flag parser.
#include <gtest/gtest.h>

#include "util/flags.h"
#include "util/status.h"

namespace swsketch {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad ell");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad ell");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad ell");
}

TEST(StatusTest, AllConstructorsProduceDistinctCodes) {
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value(), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, TakeMovesValue) {
  Result<std::string> r(std::string("hello"));
  std::string v = r.take();
  EXPECT_EQ(v, "hello");
}

class FlagsTest : public ::testing::Test {
 protected:
  Flags Parse(std::vector<std::string> args) {
    argv_storage_ = std::move(args);
    argv_storage_.insert(argv_storage_.begin(), "prog");
    argv_ptrs_.clear();
    for (auto& a : argv_storage_) {
      argv_ptrs_.push_back(const_cast<char*>(a.c_str()));
    }
    return Flags(static_cast<int>(argv_ptrs_.size()), argv_ptrs_.data());
  }

  std::vector<std::string> argv_storage_;
  std::vector<char*> argv_ptrs_;
};

TEST_F(FlagsTest, EqualsForm) {
  Flags f = Parse({"--ell=32", "--eps=0.5", "--name=lm-fd"});
  EXPECT_EQ(f.GetInt("ell", 0), 32);
  EXPECT_DOUBLE_EQ(f.GetDouble("eps", 0.0), 0.5);
  EXPECT_EQ(f.GetString("name", ""), "lm-fd");
}

TEST_F(FlagsTest, SpaceForm) {
  Flags f = Parse({"--ell", "64", "--name", "swr"});
  EXPECT_EQ(f.GetInt("ell", 0), 64);
  EXPECT_EQ(f.GetString("name", ""), "swr");
}

TEST_F(FlagsTest, BooleanSwitch) {
  Flags f = Parse({"--verbose", "--quiet=false", "--fast=true"});
  EXPECT_TRUE(f.GetBool("verbose", false));
  EXPECT_FALSE(f.GetBool("quiet", true));
  EXPECT_TRUE(f.GetBool("fast", false));
  EXPECT_TRUE(f.GetBool("absent", true));
  EXPECT_FALSE(f.GetBool("absent", false));
}

TEST_F(FlagsTest, Defaults) {
  Flags f = Parse({});
  EXPECT_EQ(f.GetInt("ell", 7), 7);
  EXPECT_DOUBLE_EQ(f.GetDouble("eps", 1.5), 1.5);
  EXPECT_EQ(f.GetString("name", "x"), "x");
  EXPECT_FALSE(f.Has("ell"));
}

TEST_F(FlagsTest, Positional) {
  Flags f = Parse({"input.csv", "--ell=2", "out.csv"});
  ASSERT_EQ(f.positional().size(), 2u);
  EXPECT_EQ(f.positional()[0], "input.csv");
  EXPECT_EQ(f.positional()[1], "out.csv");
}

TEST_F(FlagsTest, LastValueWinsOnRepeat) {
  Flags f = Parse({"--ell=1", "--ell=9"});
  EXPECT_EQ(f.GetInt("ell", 0), 9);
}

}  // namespace
}  // namespace swsketch
