// Tests for the thread pool and ParallelFor: lifecycle, exception
// propagation, the determinism contract, and nested-call safety.
#include "util/parallel.h"

#include <atomic>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

namespace swsketch {
namespace {

TEST(ThreadPoolTest, ConstructDestructIdle) {
  // Clean shutdown with no work submitted.
  ThreadPool pool(3);
  EXPECT_EQ(pool.num_threads(), 3u);
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 100; ++i) {
      pool.Submit([&done] { done.fetch_add(1); });
    }
    // No Wait(): the destructor must drain everything before joining.
  }
  EXPECT_EQ(done.load(), 100);
}

TEST(ThreadPoolTest, WaitBlocksUntilAllTasksFinish) {
  ThreadPool pool(4);
  std::atomic<int> done{0};
  for (int i = 0; i < 64; ++i) pool.Submit([&done] { done.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(done.load(), 64);
  // The pool stays usable after Wait.
  pool.Submit([&done] { done.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(done.load(), 65);
}

TEST(ThreadPoolTest, WaitRethrowsTaskException) {
  ThreadPool pool(2);
  pool.Submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(pool.Wait(), std::runtime_error);
  // The error is consumed; the pool is healthy again.
  std::atomic<int> done{0};
  pool.Submit([&done] { done.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(done.load(), 1);
}

TEST(ThreadPoolTest, DefaultThreadCountPositive) {
  EXPECT_GE(ThreadPool::DefaultThreadCount(), 1u);
  ThreadPool pool;  // threads = 0 -> default count.
  EXPECT_GE(pool.num_threads(), 1u);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  const size_t n = 10007;  // Prime: chunks won't divide evenly.
  std::vector<std::atomic<int>> hits(n);
  ParallelFor(n, [&](size_t i) { hits[i].fetch_add(1); }, {.pool = &pool});
  for (size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ParallelForTest, ZeroAndSingleIteration) {
  int calls = 0;
  ParallelFor(0, [&](size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  ParallelFor(1, [&](size_t i) { calls += static_cast<int>(i) + 1; });
  EXPECT_EQ(calls, 1);
}

TEST(ParallelForTest, DeterministicAcrossPoolSizes) {
  // The contract: writing result[i] from iteration i gives bit-identical
  // output whatever the worker count.
  const size_t n = 4096;
  const auto run = [n](ThreadPool* pool) {
    std::vector<double> out(n);
    ParallelFor(
        n,
        [&](size_t i) {
          // Index-seeded pseudo-random value (splitmix-style).
          uint64_t z = (static_cast<uint64_t>(i) + 1) * 0x9E3779B97F4A7C15ULL;
          z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
          out[i] = static_cast<double>(z >> 11) * 0x1.0p-53;
        },
        {.grain = 64, .pool = pool});
    return out;
  };
  ThreadPool p1(1), p4(4);
  const std::vector<double> serial = run(&p1);
  const std::vector<double> parallel = run(&p4);
  EXPECT_EQ(serial, parallel);
}

TEST(ParallelForTest, ExceptionPropagatesToCaller) {
  ThreadPool pool(3);
  EXPECT_THROW(ParallelFor(
                   100,
                   [](size_t i) {
                     if (i == 57) throw std::runtime_error("bad index");
                   },
                   {.grain = 10, .pool = &pool}),
               std::runtime_error);
}

TEST(ParallelForTest, NestedCallsRunInlineWithoutDeadlock) {
  // A body that itself calls ParallelFor must not wait on its own pool.
  ThreadPool pool(2);
  std::atomic<size_t> total{0};
  ParallelFor(
      8,
      [&](size_t) {
        ParallelFor(16, [&](size_t) { total.fetch_add(1); }, {.pool = &pool});
      },
      {.grain = 1, .pool = &pool});
  EXPECT_EQ(total.load(), 8u * 16u);
}

TEST(ParallelForChunksTest, ChunksPartitionRange) {
  ThreadPool pool(4);
  const size_t n = 1003;
  std::vector<int> hits(n, 0);
  std::atomic<size_t> chunks{0};
  ParallelForChunks(
      n,
      [&](size_t begin, size_t end) {
        EXPECT_LT(begin, end);
        EXPECT_LE(end, n);
        for (size_t i = begin; i < end; ++i) ++hits[i];
        chunks.fetch_add(1);
      },
      {.grain = 100, .pool = &pool});
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0),
            static_cast<int>(n));
  EXPECT_EQ(chunks.load(), (n + 99) / 100);
}

}  // namespace
}  // namespace swsketch
