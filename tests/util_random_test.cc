// Tests for the xoshiro256** RNG and its distributions.
#include "util/random.h"

#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

namespace swsketch {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.Next() == b.Next();
  EXPECT_LT(same, 3);
}

TEST(RngTest, ReseedResetsStream) {
  Rng a(99);
  std::vector<uint64_t> first;
  for (int i = 0; i < 8; ++i) first.push_back(a.Next());
  a.Seed(99);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(a.Next(), first[i]);
}

TEST(RngTest, Uniform01InRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformOpen01NeverZero) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) EXPECT_GT(rng.UniformOpen01(), 0.0);
}

TEST(RngTest, Uniform01MeanAndVariance) {
  Rng rng(11);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double u = rng.Uniform01();
    sum += u;
    sum_sq += u * u;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.5, 0.01);
  EXPECT_NEAR(var, 1.0 / 12.0, 0.01);
}

TEST(RngTest, UniformIntUnbiasedSmallRange) {
  Rng rng(5);
  const uint64_t k = 7;
  std::vector<int> counts(k, 0);
  const int n = 70000;
  for (int i = 0; i < n; ++i) ++counts[rng.UniformInt(k)];
  for (uint64_t v = 0; v < k; ++v) {
    EXPECT_NEAR(counts[v], n / static_cast<double>(k), 500)
        << "bucket " << v;
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(13);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.Gaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.02);
}

TEST(RngTest, GaussianWithParams) {
  Rng rng(17);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.Gaussian(5.0, 2.0);
  EXPECT_NEAR(sum / n, 5.0, 0.05);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(19);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(RngTest, PoissonSmallMean) {
  Rng rng(23);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.Poisson(3.0));
  EXPECT_NEAR(sum / n, 3.0, 0.1);
}

TEST(RngTest, PoissonLargeMeanUsesNormalApprox) {
  Rng rng(29);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.Poisson(200.0));
  EXPECT_NEAR(sum / n, 200.0, 2.0);
}

TEST(RngTest, PoissonZeroMean) {
  Rng rng(31);
  EXPECT_EQ(rng.Poisson(0.0), 0u);
}

TEST(RngTest, SampleWithoutReplacementProperties) {
  Rng rng(37);
  auto s = rng.SampleWithoutReplacement(100, 10);
  EXPECT_EQ(s.size(), 10u);
  EXPECT_TRUE(std::is_sorted(s.begin(), s.end()));
  std::set<size_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 10u);
  for (size_t v : s) EXPECT_LT(v, 100u);
}

TEST(RngTest, SampleWithoutReplacementFullSet) {
  Rng rng(41);
  auto s = rng.SampleWithoutReplacement(5, 5);
  EXPECT_EQ(s.size(), 5u);
  for (size_t i = 0; i < 5; ++i) EXPECT_EQ(s[i], i);
}

TEST(RngTest, SampleWithoutReplacementUniformCoverage) {
  Rng rng(43);
  std::vector<int> counts(20, 0);
  const int trials = 20000;
  for (int t = 0; t < trials; ++t) {
    for (size_t v : rng.SampleWithoutReplacement(20, 5)) ++counts[v];
  }
  // Each element appears with probability 5/20 = 0.25.
  for (int c : counts) {
    EXPECT_NEAR(c, trials * 0.25, trials * 0.25 * 0.15);
  }
}

}  // namespace
}  // namespace swsketch
